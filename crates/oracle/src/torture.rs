//! The torture runner: one engine, one reference model, many faults.
//!
//! Where [`Experiment`](recobench_core::Experiment) reproduces the
//! paper's procedure (one fault per run at a fixed instant), the torture
//! runner executes an arbitrary [`FaultSchedule`]: any number of faults,
//! any times, the six operator fault types plus raw instance kills. The
//! engine runs the TPC-C workload with the DML tap feeding a [`RefModel`];
//! after every recovery completes — and at the end of the run — the model
//! knows exactly which committed state the engine is obliged to present,
//! and [`diff_states`] checks it.
//!
//! ## Fault-during-recovery
//!
//! Recovery is synchronous in the simulation: it advances the shared
//! clock in one call. A fault whose trigger time falls inside a recovery
//! window is therefore injected the moment that recovery finishes —
//! before the driver gets a single transaction in — which is the
//! simulator's rendition of "the operator makes the next mistake while
//! the database is still recovering from the previous one". The
//! [`FaultReport::overtaken`] flag records exactly this case.
//!
//! ## Incomplete recovery and the model
//!
//! For faults whose procedure is `RECOVER UNTIL` + `RESETLOGS` (drop
//! table / drop tablespace), the runner truncates the model to the same
//! stop SCN the injector hands the engine — margin cutoff included — so
//! "the tail is sacrificed" is *specified*, not just tolerated. After a
//! resetlogs the old cold backup can no longer serve a second incomplete
//! recovery (the log sequence chain restarted), so the runner takes a
//! fresh cold backup before service resumes, exactly as Oracle's manuals
//! instruct after any `OPEN RESETLOGS`.

use std::sync::{Arc, Mutex};

use recobench_core::{apply_margin_cutoff, RecoveryConfig};
use recobench_engine::{
    DbResult, DbServer, DiskLayout, FailoverPolicy, ReplicaSet, ReplicaTopology, Scn,
};
use recobench_faults::{
    FaultInjector, FaultPlan, FaultSchedule, RecoveryKind, ReplicaFaultType, ScheduledFault,
    TortureFaultKind,
};
use recobench_sim::{SimClock, SimDuration, SimRng, SimTime};
use recobench_tpcc::{
    create_schema, load_database, AvailabilityTimeline, DriverConfig, TpccDriver, TpccScale,
};

use crate::diff::{diff_states, Divergence};
use crate::model::RefModel;

/// Everything about a torture run except the schedule itself.
#[derive(Debug, Clone)]
pub struct TortureOptions {
    /// Recovery configuration under test.
    pub config: RecoveryConfig,
    /// ARCHIVELOG mode (default on — most schedules need media recovery).
    pub archive: bool,
    /// TPC-C scale.
    pub scale: TpccScale,
    /// Terminal driver configuration.
    pub driver: DriverConfig,
    /// Datafiles provisioned for the TPC-C tablespace.
    pub datafiles: u32,
    /// Blocks per datafile.
    pub blocks_per_file: u64,
    /// Replica topology behind the primary. Empty (the default) means no
    /// stand-bys — unless the schedule contains replica faults, in which
    /// case the runner auto-provisions a two-node fan-out so the faults
    /// have something to hit.
    pub topology: ReplicaTopology,
    /// Failover policy for the replica set.
    pub policy: FailoverPolicy,
    /// Test-only engine sabotage: silently skip this many applicable
    /// row-change records during redo replay (see
    /// `DbServer::sabotage_skip_redo_records`). The oracle must catch the
    /// resulting divergence — this is how the harness proves it works.
    /// Compiled in only with the `sabotage` feature (or under test).
    #[cfg(any(test, feature = "sabotage"))]
    pub sabotage_skip_redo: u32,
}

impl Default for TortureOptions {
    fn default() -> Self {
        TortureOptions {
            config: RecoveryConfig::named("F10G3T5").expect("known configuration"),
            archive: true,
            scale: TpccScale::tiny(),
            driver: DriverConfig::default(),
            datafiles: 8,
            blocks_per_file: 768,
            topology: ReplicaTopology::none(),
            policy: FailoverPolicy::AutoQuorum,
            #[cfg(any(test, feature = "sabotage"))]
            sabotage_skip_redo: 0,
        }
    }
}

/// What happened to one scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// The schedule entry.
    pub scheduled: ScheduledFault,
    /// When the fault actually executed (`None` if skipped).
    pub injected_at: Option<SimTime>,
    /// When the database was serviceable again (`None` if skipped or
    /// unrecoverable).
    pub ready_at: Option<SimTime>,
    /// The trigger time fell inside the previous fault's recovery window
    /// — the fault-during-recovery case.
    pub overtaken: bool,
    /// The recovery procedure itself failed; the run reports
    /// unavailability from here on.
    pub unrecoverable: bool,
    /// Why the fault was not injected, when it was not.
    pub skipped: Option<String>,
}

/// Everything one torture run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TortureOutcome {
    /// The schedule that ran.
    pub schedule: FaultSchedule,
    /// Per-fault reports, in injection order.
    pub faults: Vec<FaultReport>,
    /// Every disagreement between engine and model at the end of the run
    /// (empty on a healthy engine).
    pub divergences: Vec<Divergence>,
    /// The end-user availability timeline over the whole run.
    pub timeline: AvailabilityTimeline,
    /// Recovery windows `(outage start, service-capable end)` in µs of
    /// sim time, one per recovered fault. The driver can record no
    /// success strictly inside any window — the consistency property the
    /// timeline tests pin down.
    pub recovery_spans_us: Vec<(u64, u64)>,
    /// Client transaction attempts over the run.
    pub attempted: u64,
    /// Commit acknowledgements the model observed.
    pub commits: u64,
    /// At least one recovery procedure failed; the differential check is
    /// skipped (unavailability is the reported outcome, not corruption).
    pub unrecoverable: bool,
    /// Failovers performed by the replica set (0 without stand-bys).
    pub failovers: u64,
    /// Acknowledged commits sacrificed by failovers: the primary acked
    /// them but no shipped archive carried them to the promoted node
    /// before the kill (replication lag made the recovery incomplete).
    pub lost_commits: u64,
}

impl TortureOutcome {
    /// Whether the run found any disagreement between engine and model.
    pub fn diverged(&self) -> bool {
        !self.divergences.is_empty()
    }
}

/// Runs [`FaultSchedule`]s against a fresh engine + model pair.
#[derive(Debug, Clone, Default)]
pub struct TortureRunner {
    opts: TortureOptions,
}

impl TortureRunner {
    /// A runner with the given options.
    pub fn new(opts: TortureOptions) -> TortureRunner {
        TortureRunner { opts }
    }

    /// The options in force.
    pub fn options(&self) -> &TortureOptions {
        &self.opts
    }

    /// Runs one schedule to completion. Deterministic: the same schedule
    /// and options produce the same outcome, field for field.
    ///
    /// # Errors
    ///
    /// Fails only on setup problems (schema creation, load, backup);
    /// faults, failed recoveries and divergences are results.
    pub fn run(&self, schedule: &FaultSchedule) -> DbResult<TortureOutcome> {
        let clock = SimClock::shared();
        let icfg = self.opts.config.to_instance_config(self.opts.archive);
        let mut srv = DbServer::on_fresh_disks(
            "TORTURE",
            Arc::clone(&clock),
            DiskLayout::four_disk(),
            icfg.clone(),
        );
        srv.create_database()?;
        let mut rng = SimRng::seed_from(schedule.seed);
        let schema = create_schema(
            &mut srv,
            self.opts.scale,
            self.opts.datafiles,
            self.opts.blocks_per_file,
        )?;
        load_database(&mut srv, &schema, &mut rng.fork(1))?;
        srv.take_cold_backup()?;
        #[cfg(any(test, feature = "sabotage"))]
        if self.opts.sabotage_skip_redo > 0 {
            srv.sabotage_skip_redo_records(self.opts.sabotage_skip_redo);
        }
        // Stand-bys behind the primary: the configured topology, or an
        // auto-provisioned two-node fan-out when the schedule targets a
        // replica set nobody configured.
        let topo = if !self.opts.topology.is_empty() {
            self.opts.topology.clone()
        } else if schedule.has_replica_faults() {
            ReplicaTopology::fan_out(2)
        } else {
            ReplicaTopology::none()
        };
        let mut replica: Option<ReplicaSet> = if topo.is_empty() {
            None
        } else {
            Some(ReplicaSet::instantiate(
                &srv,
                &topo,
                self.opts.policy,
                Arc::clone(&clock),
                DiskLayout::four_disk(),
                icfg,
            )?)
        };
        let model = Arc::new(Mutex::new(RefModel::from_server(&srv)?));
        {
            let model = Arc::clone(&model);
            srv.set_dml_tap(move |change| model.lock().unwrap().observe(change));
        }

        let t0 = clock.now();
        let end = t0 + SimDuration::from_secs(schedule.duration_secs);
        let mut driver = TpccDriver::new(schema, self.opts.driver, rng.fork(2), t0);

        let faults = schedule.sorted_faults();
        let mut next_fault = 0usize;
        let mut reports: Vec<FaultReport> = Vec::new();
        let mut spans_us: Vec<(u64, u64)> = Vec::new();
        let mut unrecoverable = false;
        let mut lost_commits = 0u64;
        // Rolling (time, SCN) trail for the PITR margin cutoff, exactly
        // as `Experiment::run` samples it.
        let mut scn_trail: Vec<(SimTime, Scn)> = Vec::new();
        let mut last_ready: Option<SimTime> = None;

        loop {
            if clock.now() >= end {
                break;
            }
            if next_fault < faults.len() && !unrecoverable {
                let f = faults[next_fault];
                let sched_t = t0 + SimDuration::from_secs(f.at_secs);
                // A fault whose time has already passed (recovery overtook
                // it) fires immediately; otherwise it fires once it is the
                // next event on the timeline.
                let due_now = sched_t <= clock.now();
                if sched_t <= end && (due_now || sched_t <= driver.next_ready()) {
                    clock.advance_to(sched_t);
                    let overtaken =
                        last_ready.is_some_and(|ready| sched_t < ready);
                    let report = self.one_fault(
                        f,
                        overtaken,
                        &mut srv,
                        &mut replica,
                        &mut driver,
                        &model,
                        &scn_trail,
                        &mut spans_us,
                        &mut lost_commits,
                    );
                    unrecoverable |= report.unrecoverable;
                    last_ready = report.ready_at.or(last_ready);
                    reports.push(report);
                    next_fault += 1;
                    continue;
                }
            }
            if driver.next_ready() >= end {
                clock.advance_to(end);
                break;
            }
            {
                // After a failover the promoted stand-by serves clients;
                // before one (and without stand-bys) the primary does.
                let active: &mut DbServer = match replica.as_mut() {
                    Some(rs) if rs.promoted().is_some() => match rs.active_mut() {
                        Some(s) => s,
                        None => &mut srv,
                    },
                    _ => &mut srv,
                };
                driver.step(active);
                if active.is_open() {
                    match scn_trail.last() {
                        Some((_, last)) if *last == active.current_scn() => {}
                        _ => scn_trail.push((clock.now(), active.current_scn())),
                    }
                }
            }
            if let Some(rs) = replica.as_mut() {
                if rs.promoted().is_some() {
                    rs.sync_followers()?;
                } else if srv.is_open() {
                    rs.sync_all(&srv)?;
                }
            }
        }

        // Faults the run never reached (scheduled past the end, or after
        // the database became unrecoverable).
        for f in faults.iter().skip(next_fault) {
            reports.push(FaultReport {
                scheduled: *f,
                injected_at: None,
                ready_at: None,
                overtaken: false,
                unrecoverable: false,
                skipped: Some(if unrecoverable {
                    "database unrecoverable".to_string()
                } else {
                    "scheduled after end of run".to_string()
                }),
            });
        }

        // Drain in-flight terminals: the differential oracle compares
        // committed state, so an open transaction or a parked lock wait
        // must not linger into the diff.
        {
            let active: &mut DbServer = match replica.as_mut() {
                Some(rs) if rs.promoted().is_some() => match rs.active_mut() {
                    Some(s) => s,
                    None => &mut srv,
                },
                _ => &mut srv,
            };
            driver.quiesce(active);
        }
        let timeline = driver.availability_timeline(t0, end);
        let active_ref: &DbServer = match replica
            .as_ref()
            .and_then(|rs| rs.promoted().and_then(|k| rs.node(k)))
        {
            Some(standby) => standby.server(),
            None => &srv,
        };
        let divergences = if unrecoverable || !active_ref.is_open() {
            Vec::new()
        } else {
            diff_states(active_ref, &model.lock().unwrap())?
        };
        let commits = model.lock().unwrap().acked_commits();
        Ok(TortureOutcome {
            schedule: schedule.clone(),
            faults: reports,
            divergences,
            timeline,
            recovery_spans_us: spans_us,
            attempted: driver.attempted(),
            commits,
            unrecoverable,
            failovers: replica.as_ref().map_or(0, ReplicaSet::failovers),
            lost_commits,
        })
    }

    /// Injects one fault and drives its recovery (both synchronous).
    #[allow(clippy::too_many_arguments)]
    fn one_fault(
        &self,
        f: ScheduledFault,
        overtaken: bool,
        srv: &mut DbServer,
        replica: &mut Option<ReplicaSet>,
        driver: &mut TpccDriver,
        model: &Arc<Mutex<RefModel>>,
        scn_trail: &[(SimTime, Scn)],
        spans_us: &mut Vec<(u64, u64)>,
        lost_commits: &mut u64,
    ) -> FaultReport {
        let mut report = FaultReport {
            scheduled: f,
            injected_at: None,
            ready_at: None,
            overtaken,
            unrecoverable: false,
            skipped: None,
        };
        // Once the primary has been failed away from, the legacy fault
        // kinds would hit the retired machine — skip them rather than
        // pretend the dead node's backups and datafiles still matter.
        if replica.as_ref().is_some_and(|r| r.promoted().is_some())
            && !matches!(f.kind, TortureFaultKind::Replica(_))
        {
            report.skipped = Some("primary failed over; fault targets the retired node".to_string());
            return report;
        }
        match f.kind {
            TortureFaultKind::Replica(r) => {
                self.one_replica_fault(
                    r,
                    &mut report,
                    srv,
                    replica,
                    driver,
                    model,
                    spans_us,
                    lost_commits,
                );
            }
            TortureFaultKind::InstanceKill => {
                if !srv.is_open() {
                    report.skipped = Some("instance already down".to_string());
                    return report;
                }
                let at = srv.clock().now();
                if let Err(e) = srv.shutdown_abort() {
                    report.skipped = Some(format!("kill failed: {e}"));
                    return report;
                }
                report.injected_at = Some(at);
                driver.record_outage(at);
                // The operator notices the dead instance after the same
                // constant detection delay the injector models.
                srv.clock().advance(SimDuration::from_secs(1));
                match srv.startup() {
                    Ok(()) => {
                        let ready = srv.clock().now();
                        spans_us.push((at.as_micros(), ready.as_micros()));
                        report.ready_at = Some(ready);
                    }
                    Err(_) => report.unrecoverable = true,
                }
            }
            TortureFaultKind::Storage(s) => {
                if !srv.is_open() {
                    report.skipped = Some("instance already down".to_string());
                    return report;
                }
                self.one_storage_fault(s, f, &mut report, srv, driver, model, spans_us);
            }
            TortureFaultKind::Operator(fault) => {
                let injector = FaultInjector::new(FaultPlan::new(fault, f.at_secs));
                let mut record = match injector.inject(srv) {
                    Ok(r) => r,
                    Err(e) => {
                        report.skipped = Some(format!("injection failed: {e}"));
                        return report;
                    }
                };
                report.injected_at = Some(record.injected_at);
                driver.record_outage(record.injected_at);
                apply_margin_cutoff(&mut record, scn_trail, injector.plan().pitr_margin);
                // The margin (or a sparse trail) can point before the
                // current backup; the engine cannot rewind past what it
                // restores from, so neither may the stop SCN.
                if let Some(backup) = srv.backup() {
                    if record.scn_before < backup.scn {
                        record.scn_before = backup.scn;
                    }
                }
                let incomplete = fault.recovery_kind() == RecoveryKind::Incomplete;
                match injector.recover(srv, &record) {
                    Ok(_out) => {
                        if incomplete {
                            model.lock().unwrap().truncate_to(record.scn_before.next());
                            // RESETLOGS invalidated the backup chain; take
                            // a fresh cold backup before resuming service.
                            if srv.take_cold_backup().is_err() {
                                report.unrecoverable = true;
                                return report;
                            }
                        }
                        let ready = srv.clock().now();
                        spans_us.push((record.injected_at.as_micros(), ready.as_micros()));
                        report.ready_at = Some(ready);
                    }
                    Err(_) => {
                        // Recovery failed. Try a plain restart so the run
                        // can report *unavailability* rather than wedge —
                        // but the state is no longer specified, so the
                        // differential check is off from here.
                        if !srv.is_open() {
                            // tidy-allow(error-swallow): best-effort restart after failed recovery; the report already says unrecoverable
                            let _ = srv.startup();
                        }
                        report.unrecoverable = true;
                    }
                }
            }
        }
        report
    }

    /// Injects one replica-set fault. Node kills trigger a failover (the
    /// quorum decides under the configured policy); shipping faults arm
    /// damage on a stand-by and let the run continue — the primary never
    /// notices, only the replica set's health changes.
    #[allow(clippy::too_many_arguments)]
    fn one_replica_fault(
        &self,
        r: ReplicaFaultType,
        report: &mut FaultReport,
        srv: &mut DbServer,
        replica: &mut Option<ReplicaSet>,
        driver: &mut TpccDriver,
        model: &Arc<Mutex<RefModel>>,
        spans_us: &mut Vec<(u64, u64)>,
        lost_commits: &mut u64,
    ) {
        let Some(rs) = replica.as_mut() else {
            report.skipped = Some("no replica set provisioned".to_string());
            return;
        };
        match r {
            ReplicaFaultType::KillPrimary => {
                if rs.promoted().is_some() {
                    report.skipped = Some("primary already failed over".to_string());
                    return;
                }
                if !srv.is_open() {
                    report.skipped = Some("instance already down".to_string());
                    return;
                }
                let at = srv.clock().now();
                if let Err(e) = srv.shutdown_abort() {
                    report.skipped = Some(format!("kill failed: {e}"));
                    return;
                }
                report.injected_at = Some(at);
                driver.record_outage(at);
                Self::promote(rs, Some(srv), at, report, driver, model, spans_us, lost_commits);
            }
            ReplicaFaultType::KillPromoted => {
                if rs.promoted().is_none() {
                    report.skipped =
                        Some("no promoted node to kill (needs a prior kill_primary)".to_string());
                    return;
                }
                let at = match rs.kill_promoted() {
                    Ok(at) => at,
                    Err(e) => {
                        report.skipped = Some(format!("kill failed: {e}"));
                        return;
                    }
                };
                report.injected_at = Some(at);
                driver.record_outage(at);
                Self::promote(rs, None, at, report, driver, model, spans_us, lost_commits);
            }
            ReplicaFaultType::CorruptShippedArchive => match rs.first_followable() {
                Some(i) => {
                    rs.arm_ship_corruption(i);
                    // No outage: the primary keeps serving; only the
                    // targeted stand-by freezes when the bad copy lands.
                    report.injected_at = Some(srv.clock().now());
                    report.ready_at = Some(srv.clock().now());
                }
                None => report.skipped = Some("no followable replica to corrupt".to_string()),
            },
            ReplicaFaultType::PartitionReplica => match rs.first_followable() {
                Some(i) => {
                    rs.partition(i);
                    report.injected_at = Some(srv.clock().now());
                    report.ready_at = Some(srv.clock().now());
                }
                None => report.skipped = Some("no followable replica to partition".to_string()),
            },
        }
    }

    /// Runs a failover and reconciles the reference model with the
    /// promoted node: in-doubt transactions are settled against its state
    /// first, then the model is truncated to the promoted node's last
    /// applied commit — everything past it is the acked-but-unshipped
    /// tail the failover sacrificed, and it is *specified* as lost.
    #[allow(clippy::too_many_arguments)]
    fn promote(
        rs: &mut ReplicaSet,
        old_primary: Option<&mut DbServer>,
        at: SimTime,
        report: &mut FaultReport,
        driver: &mut TpccDriver,
        model: &Arc<Mutex<RefModel>>,
        spans_us: &mut Vec<(u64, u64)>,
        lost_commits: &mut u64,
    ) {
        match rs.fail_over(old_primary) {
            Ok(Some(ready)) => {
                let (Some(stop), Some(k)) = (rs.promoted_last_commit_scn(), rs.promoted()) else {
                    report.unrecoverable = true;
                    return;
                };
                let Some(promoted) = rs.node(k) else {
                    report.unrecoverable = true;
                    return;
                };
                {
                    let mut m = model.lock().unwrap();
                    // Transactions open at the kill never acked; probe the
                    // promoted node to settle them (at `stop`, so a
                    // resolved commit survives the truncation below).
                    for txn in m.open_txn_ids() {
                        if m.resolve_in_doubt(promoted.server(), txn, stop).is_err() {
                            report.unrecoverable = true;
                            return;
                        }
                    }
                    let before = m.surviving_commits();
                    m.truncate_to(stop.next());
                    *lost_commits += before.saturating_sub(m.surviving_commits());
                }
                // The DML tap follows the service: from here on the
                // promoted node feeds the model, not the dead machine.
                if let Some(active) = rs.active_mut() {
                    let model = Arc::clone(model);
                    active.set_dml_tap(move |change| model.lock().unwrap().observe(change));
                }
                // Terminals lose their sessions and reconnect to the
                // promoted node on their next transaction.
                driver.sever_all(ready);
                spans_us.push((at.as_micros(), ready.as_micros()));
                report.ready_at = Some(ready);
            }
            // Quorum denied (or no survivor): the service stays down.
            Ok(None) => report.unrecoverable = true,
            Err(_) => report.unrecoverable = true,
        }
    }

    /// Injects one storage fault and drives its recovery. The five kinds
    /// have three distinct shapes:
    ///
    /// * **torn write / bit-rot** — silent datafile damage: the engine
    ///   notices nothing until the per-block checksum probe runs, then
    ///   media-recovers each damaged file;
    /// * **partial append / disk full** — loud failures: a redo flush
    ///   dies mid-write and takes the instance with it (crash recovery
    ///   tolerates the torn tail), or a checkpoint hits `ENOSPC` and
    ///   retries after the operator frees space;
    /// * **slow I/O** — pure degradation: service continues, commits
    ///   drag, nothing to recover — so no outage and no recovery span.
    #[allow(clippy::too_many_arguments)]
    fn one_storage_fault(
        &self,
        s: recobench_faults::StorageFaultType,
        f: ScheduledFault,
        report: &mut FaultReport,
        srv: &mut DbServer,
        driver: &mut TpccDriver,
        model: &Arc<Mutex<RefModel>>,
        spans_us: &mut Vec<(u64, u64)>,
    ) {
        use recobench_faults::StorageFaultType;
        use recobench_vfs::{FaultArm, FileKind, FileMatch};
        match s {
            StorageFaultType::TornWrite | StorageFaultType::BitRot => {
                let at = srv.clock().now();
                let armed = {
                    let mut fs = srv.fs().lock();
                    if s == StorageFaultType::TornWrite {
                        fs.arm_fault(FaultArm::TornWrite {
                            target: FileMatch::Kind(FileKind::Data),
                            keep_num: 1,
                            keep_den: 2,
                        })
                    } else {
                        fs.arm_fault(FaultArm::BitRot {
                            target: FileMatch::Kind(FileKind::Data),
                            seed: f.at_secs ^ 0xB17_0B07,
                        })
                    }
                };
                if let Err(e) = armed {
                    report.skipped = Some(format!("injection failed: {e}"));
                    return;
                }
                if s == StorageFaultType::TornWrite {
                    // The tear waits for a datafile write; force one with
                    // a checkpoint, then disarm whether or not it fired.
                    // tidy-allow(error-swallow): the checkpoint exists to trigger the armed tear; failure IS the scenario
                    let _ = srv.checkpoint_now();
                    let fired = !srv.fs().lock().fault_pending();
                    srv.fs().lock().clear_faults();
                    if !fired {
                        report.skipped = Some("no datafile write to tear".to_string());
                        return;
                    }
                }
                // Detection: the damage is silent — only the block
                // checksums know. The probe names the files to repair.
                let bad = match srv.datafiles_with_bad_checksums() {
                    Ok(b) => b,
                    Err(_) => {
                        report.unrecoverable = true;
                        return;
                    }
                };
                if bad.is_empty() {
                    report.skipped = Some("damage landed harmlessly".to_string());
                    return;
                }
                report.injected_at = Some(at);
                driver.record_outage(at);
                srv.clock().advance(SimDuration::from_secs(1));
                for path in &bad {
                    if srv.recover_datafile(path).is_err() {
                        report.unrecoverable = true;
                        return;
                    }
                }
                let ready = srv.clock().now();
                spans_us.push((at.as_micros(), ready.as_micros()));
                report.ready_at = Some(ready);
            }
            StorageFaultType::PartialAppend => {
                let armed = srv.fs().lock().arm_fault(FaultArm::PartialAppend {
                    target: FileMatch::Kind(FileKind::Redo),
                    keep_num: 1,
                    keep_den: 2,
                });
                if let Err(e) = armed {
                    report.skipped = Some(format!("injection failed: {e}"));
                    return;
                }
                // The next redo flush dies mid-write and the instance dies
                // with it (LGWR semantics). Step the workload until that
                // happens; commits flush, so it is at most a step or two.
                let mut fired = false;
                for _ in 0..400 {
                    if !srv.is_open() {
                        fired = true;
                        break;
                    }
                    driver.step(srv);
                }
                if !fired {
                    srv.fs().lock().clear_faults();
                    report.skipped = Some("no redo flush to interrupt".to_string());
                    return;
                }
                let at = srv.clock().now();
                report.injected_at = Some(at);
                driver.record_outage(at);
                srv.fs().lock().clear_faults();
                srv.clock().advance(SimDuration::from_secs(1));
                if srv.startup().is_err() {
                    report.unrecoverable = true;
                    return;
                }
                // The torn flush may or may not have made the in-flight
                // commit durable before it died; the client only heard an
                // error. Ask the recovered engine which way it went and
                // settle every dead transaction the same way it did.
                {
                    let scn = srv.current_scn();
                    let mut m = model.lock().unwrap();
                    for txn in m.open_txn_ids() {
                        if m.resolve_in_doubt(srv, txn, scn).is_err() {
                            report.unrecoverable = true;
                            return;
                        }
                    }
                }
                let ready = srv.clock().now();
                spans_us.push((at.as_micros(), ready.as_micros()));
                report.ready_at = Some(ready);
            }
            StorageFaultType::DiskFull => {
                let at = srv.clock().now();
                let armed = srv.fs().lock().arm_fault(FaultArm::DiskFull {
                    disk: DiskLayout::four_disk().data_disks[0],
                    after_bytes: 0,
                });
                if let Err(e) = armed {
                    report.skipped = Some(format!("injection failed: {e}"));
                    return;
                }
                report.injected_at = Some(at);
                driver.record_outage(at);
                // The next checkpoint hits ENOSPC: the affected blocks
                // stay dirty, the recovery position holds, and the
                // operator gets the alarm.
                // tidy-allow(error-swallow): the ENOSPC failure is the injected fault under test
                let _ = srv.checkpoint_now();
                srv.clock().advance(SimDuration::from_secs(1));
                // Operator frees space; the retried checkpoint drains the
                // write-out backlog.
                srv.fs().lock().clear_faults();
                match srv.checkpoint_now() {
                    Ok(()) => {
                        let ready = srv.clock().now();
                        spans_us.push((at.as_micros(), ready.as_micros()));
                        report.ready_at = Some(ready);
                    }
                    Err(_) => report.unrecoverable = true,
                }
            }
            StorageFaultType::SlowIo => {
                let armed = srv.fs().lock().arm_fault(FaultArm::SlowIo {
                    disk: DiskLayout::four_disk().redo_disk,
                    multiplier: 8,
                });
                if let Err(e) = armed {
                    report.skipped = Some(format!("injection failed: {e}"));
                    return;
                }
                report.injected_at = Some(srv.clock().now());
                // A limping disk degrades service but never interrupts
                // it: commits keep succeeding (slowly), so there is no
                // outage and no recovery span — only a slower stretch on
                // the availability timeline.
                for _ in 0..64 {
                    if !srv.is_open() {
                        break;
                    }
                    driver.step(srv);
                }
                srv.fs().lock().clear_faults();
                report.ready_at = Some(srv.clock().now());
            }
        }
    }
}
