//! The TPC-C workload for RecoBench.
//!
//! A scaled-down but structurally faithful TPC-C implementation over the
//! `recobench-engine` storage engine:
//!
//! * the nine-table **schema** with its primary and secondary indexes;
//! * a deterministic **loader** (NURand, last-name syllables, filler data);
//! * the five **transaction profiles** (New-Order, Payment, Order-Status,
//!   Delivery, Stock-Level) with the standard 45/43/4/4/4 mix and the 1 %
//!   deliberately-rolled-back New-Order;
//! * a closed-loop **terminal driver** that measures tpmC, records every
//!   commit acknowledgement in a client-side audit log (the basis of the
//!   paper's *lost transactions* measure), and tracks service loss and
//!   restoration from the end-user point of view (the basis of the
//!   *recovery time* measure);
//! * the TPC-C **consistency conditions**, used as the *data integrity*
//!   oracle after every recovery.

pub mod consistency;
pub mod driver;
pub mod gen;
pub mod schema;
pub mod tx;

pub use consistency::{check_consistency, ConsistencyReport};
pub use driver::{AvailabilityTimeline, DriverConfig, StepEvent, TpccDriver};
pub use gen::load_database;
pub use schema::{create_schema, TpccScale, TpccSchema};
pub use tx::TxnKind;
