//! The TPC-C consistency conditions — the benchmark's data-integrity
//! oracle.
//!
//! The paper reports *data integrity violations* as one of its three
//! dependability measures; this module is how RecoBench detects them. The
//! four standard conditions (clause 3.3.2.1–4) are evaluated through the
//! engine's zero-cost inspection interface so the check itself never
//! perturbs the measured timeline.

use std::collections::BTreeMap;

use recobench_engine::row::Value;
use recobench_engine::{DbResult, DbServer};

use crate::schema::{self, TpccSchema};

/// Result of a consistency sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Human-readable description of every violation found.
    pub violations: Vec<String>,
    /// Districts checked.
    pub districts_checked: u64,
}

impl ConsistencyReport {
    /// Whether the database passed every condition.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations found.
    pub fn violation_count(&self) -> u64 {
        self.violations.len() as u64
    }
}

fn as_u64(v: Option<&Value>) -> u64 {
    v.and_then(Value::as_u64).unwrap_or(0)
}

fn as_i64(v: Option<&Value>) -> i64 {
    v.and_then(Value::as_i64).unwrap_or(0)
}

/// Evaluates TPC-C consistency conditions 1–4 over the whole database.
///
/// * **C1**: `W_YTD = Σ D_YTD` for every warehouse.
/// * **C2**: `D_NEXT_O_ID − 1 = max(O_ID) = max(NO_O_ID)` per district.
/// * **C3**: `max(NO_O_ID) − min(NO_O_ID) + 1 = |NEW_ORDER|` per district.
/// * **C4**: `Σ O_OL_CNT = |ORDER_LINE|` per district.
///
/// # Errors
///
/// Fails if the tables cannot be read at all (e.g. instance down) — that
/// is a *service* problem, not an integrity violation.
pub fn check_consistency(server: &DbServer, schema: &TpccSchema) -> DbResult<ConsistencyReport> {
    let mut report = ConsistencyReport::default();

    // Gather per-district aggregates in one pass per table.
    let mut d_ytd: BTreeMap<u64, i64> = BTreeMap::new(); // per warehouse
    let mut next_o: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for (_, row) in server.peek_scan(schema.district)? {
        let w = as_u64(row.get(schema::district::D_W_ID));
        let d = as_u64(row.get(schema::district::D_ID));
        *d_ytd.entry(w).or_insert(0) += as_i64(row.get(schema::district::D_YTD));
        next_o.insert((w, d), as_u64(row.get(schema::district::D_NEXT_O_ID)));
    }

    // C1: warehouse YTD vs sum of district YTDs.
    for (_, row) in server.peek_scan(schema.warehouse)? {
        let w = as_u64(row.get(schema::warehouse::W_ID));
        let w_ytd = as_i64(row.get(schema::warehouse::W_YTD));
        let sum = d_ytd.get(&w).copied().unwrap_or(0);
        if w_ytd != sum {
            report
                .violations
                .push(format!("C1: warehouse {w} W_YTD={w_ytd} but sum(D_YTD)={sum}"));
        }
    }

    // ORDERS aggregates.
    let mut max_o: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut sum_ol_cnt: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for (_, row) in server.peek_scan(schema.orders)? {
        let k = (as_u64(row.get(schema::orders::O_W_ID)), as_u64(row.get(schema::orders::O_D_ID)));
        let o = as_u64(row.get(schema::orders::O_ID));
        let e = max_o.entry(k).or_insert(0);
        *e = (*e).max(o);
        *sum_ol_cnt.entry(k).or_insert(0) += as_u64(row.get(schema::orders::O_OL_CNT));
    }

    // NEW_ORDER aggregates.
    let mut no_minmax: BTreeMap<(u64, u64), (u64, u64, u64)> = BTreeMap::new(); // (min, max, count)
    for (_, row) in server.peek_scan(schema.new_order)? {
        let k = (
            as_u64(row.get(schema::new_order::NO_W_ID)),
            as_u64(row.get(schema::new_order::NO_D_ID)),
        );
        let o = as_u64(row.get(schema::new_order::NO_O_ID));
        let e = no_minmax.entry(k).or_insert((u64::MAX, 0, 0));
        e.0 = e.0.min(o);
        e.1 = e.1.max(o);
        e.2 += 1;
    }

    // ORDER_LINE counts.
    let mut ol_count: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for (_, row) in server.peek_scan(schema.order_line)? {
        let k = (
            as_u64(row.get(schema::order_line::OL_W_ID)),
            as_u64(row.get(schema::order_line::OL_D_ID)),
        );
        *ol_count.entry(k).or_insert(0) += 1;
    }

    for (&(w, d), &next) in &next_o {
        report.districts_checked += 1;
        let max_orders = max_o.get(&(w, d)).copied().unwrap_or(0);
        // C2 (orders half): D_NEXT_O_ID - 1 == max(O_ID).
        if next.saturating_sub(1) != max_orders {
            report.violations.push(format!(
                "C2: district ({w},{d}) D_NEXT_O_ID={next} but max(O_ID)={max_orders}"
            ));
        }
        if let Some(&(no_min, no_max, count)) = no_minmax.get(&(w, d)) {
            // C2 (new-order half): undelivered orders end at max(O_ID).
            if no_max != max_orders {
                report.violations.push(format!(
                    "C2: district ({w},{d}) max(NO_O_ID)={no_max} but max(O_ID)={max_orders}"
                ));
            }
            // C3: NEW_ORDER ids are contiguous.
            if no_max - no_min + 1 != count {
                report.violations.push(format!(
                    "C3: district ({w},{d}) NEW_ORDER range [{no_min},{no_max}] has {count} rows"
                ));
            }
        }
        // C4: order lines match the order headers.
        let lines = ol_count.get(&(w, d)).copied().unwrap_or(0);
        let promised = sum_ol_cnt.get(&(w, d)).copied().unwrap_or(0);
        if lines != promised {
            report.violations.push(format!(
                "C4: district ({w},{d}) sum(O_OL_CNT)={promised} but |ORDER_LINE|={lines}"
            ));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::load_database;
    use crate::schema::{create_schema, TpccScale};
    use recobench_engine::row::Row;
    use recobench_engine::{DiskLayout, InstanceConfig};
    use recobench_sim::{SimClock, SimRng};

    fn loaded() -> (DbServer, TpccSchema) {
        let mut srv = DbServer::on_fresh_disks(
            "CONS",
            SimClock::shared(),
            DiskLayout::four_disk(),
            InstanceConfig::default(),
        );
        srv.create_database().unwrap();
        let schema = create_schema(&mut srv, TpccScale::tiny(), 4, 2_048).unwrap();
        let mut rng = SimRng::seed_from(3);
        load_database(&mut srv, &schema, &mut rng).unwrap();
        (srv, schema)
    }

    #[test]
    fn fresh_load_is_consistent() {
        let (srv, schema) = loaded();
        let report = check_consistency(&srv, &schema).unwrap();
        assert!(report.is_consistent(), "violations: {:?}", report.violations);
        assert_eq!(report.districts_checked, 2);
    }

    #[test]
    fn detects_a_c1_violation() {
        let (mut srv, schema) = loaded();
        // Corrupt W_YTD out from under the districts.
        let (rid, mut row) = srv.peek_scan(schema.warehouse).unwrap().remove(0);
        row.set(schema::warehouse::W_YTD, Value::I64(1));
        let s = srv.connect().unwrap();
        srv.update(s, schema.warehouse, rid, row).unwrap();
        srv.commit(s).unwrap();
        srv.disconnect(s);
        let report = check_consistency(&srv, &schema).unwrap();
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations[0].starts_with("C1"));
    }

    #[test]
    fn detects_c2_and_c4_violations() {
        let (mut srv, schema) = loaded();
        // A phantom order header with no lines breaks both C2 and C4.
        let s = srv.connect().unwrap();
        srv.insert(
            s,
            schema.orders,
            Row::new(vec![
                Value::U64(1),
                Value::U64(1),
                Value::U64(999),
                Value::U64(1),
                Value::U64(0),
                Value::U64(0),
                Value::U64(5),
            ]),
        )
        .unwrap();
        srv.commit(s).unwrap();
        srv.disconnect(s);
        let report = check_consistency(&srv, &schema).unwrap();
        assert!(!report.is_consistent());
        assert!(report.violations.iter().any(|v| v.starts_with("C2")));
        assert!(report.violations.iter().any(|v| v.starts_with("C4")));
    }
}
