//! TPC-C data generation: NURand, last-name syllables, filler strings and
//! the initial database population.

use recobench_engine::row::{Row, Value};
use recobench_engine::{DbResult, DbServer};
use recobench_sim::SimRng;

use crate::schema::TpccSchema;

/// The ten syllables TPC-C composes last names from (clause 4.3.2.3).
pub const LAST_NAME_SYLLABLES: [&str; 10] =
    ["BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"];

/// Builds a last name from a number in `0..=999` per the specification.
pub fn last_name(num: u64) -> String {
    let n = num % 1000;
    format!(
        "{}{}{}",
        LAST_NAME_SYLLABLES[(n / 100) as usize],
        LAST_NAME_SYLLABLES[((n / 10) % 10) as usize],
        LAST_NAME_SYLLABLES[(n % 10) as usize]
    )
}

/// The TPC-C non-uniform random function (clause 2.1.6):
/// `NURand(A, x, y) = (((random(0,A) | random(x,y)) + C) % (y-x+1)) + x`.
pub fn nurand(rng: &mut SimRng, a: u64, c: u64, x: u64, y: u64) -> u64 {
    let r1 = rng.gen_range(0..=a);
    let r2 = rng.gen_range(x..=y);
    (((r1 | r2) + c) % (y - x + 1)) + x
}

/// Random alphanumeric filler of length within `lo..=hi`.
pub fn filler(rng: &mut SimRng, lo: usize, hi: usize) -> String {
    const CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    let len = rng.gen_range(lo..=hi);
    (0..len).map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char).collect()
}

fn u(v: u64) -> Value {
    Value::U64(v)
}

fn i(v: i64) -> Value {
    Value::I64(v)
}

/// Populates the TPC-C tables at the schema's scale using the direct-path
/// loader, then checkpoints so the load is durable. Deterministic for a
/// given RNG.
///
/// # Errors
///
/// Fails on storage exhaustion.
pub fn load_database(server: &mut DbServer, schema: &TpccSchema, rng: &mut SimRng) -> DbResult<()> {
    let scale = schema.scale;
    // ITEM
    let mut items = Vec::with_capacity(scale.items as usize);
    for i_id in 1..=scale.items {
        items.push(Row::new(vec![
            u(i_id),
            Value::from(format!("item-{i_id}")),
            i(rng.gen_range(100..=10_000)),
            Value::from(filler(rng, 26, 50)),
        ]));
    }
    server.bulk_load(schema.item, items)?;

    for w_id in 1..=scale.warehouses {
        // WAREHOUSE
        server.bulk_load(
            schema.warehouse,
            vec![Row::new(vec![
                u(w_id),
                Value::from(format!("WARE{w_id:02}")),
                i(30_000_000), // W_YTD = 300 000.00
                u(rng.gen_range(0..=2_000)),
            ])],
        )?;
        // STOCK
        let mut stock = Vec::with_capacity(scale.items as usize);
        for i_id in 1..=scale.items {
            stock.push(Row::new(vec![
                u(w_id),
                u(i_id),
                i(rng.gen_range(10..=100)),
                u(0),
                u(0),
                u(0),
                Value::from(filler(rng, 26, 50)),
            ]));
        }
        server.bulk_load(schema.stock, stock)?;

        for d_id in 1..=scale.districts_per_warehouse {
            // DISTRICT: D_NEXT_O_ID starts past the seed orders; D_YTD is
            // sized so that W_YTD == sum(D_YTD) (consistency condition 1).
            let d_ytd = 30_000_000 / scale.districts_per_warehouse as i64;
            server.bulk_load(
                schema.district,
                vec![Row::new(vec![
                    u(w_id),
                    u(d_id),
                    Value::from(format!("DIST{d_id:02}")),
                    i(d_ytd),
                    u(scale.seed_orders_per_district + 1),
                    u(rng.gen_range(0..=2_000)),
                ])],
            )?;
            // CUSTOMER
            let mut customers = Vec::with_capacity(scale.customers_per_district as usize);
            for c_id in 1..=scale.customers_per_district {
                customers.push(Row::new(vec![
                    u(w_id),
                    u(d_id),
                    u(c_id),
                    Value::from(last_name(if c_id <= 10 { c_id - 1 } else { nurand_seed(rng) })),
                    Value::from(filler(rng, 8, 16)),
                    i(-1_000), // C_BALANCE = -10.00
                    i(1_000),  // C_YTD_PAYMENT = 10.00
                    u(1),
                    u(0),
                    Value::from(filler(rng, 100, 200)),
                ]));
            }
            server.bulk_load(schema.customer, customers)?;
            // Seed orders: already delivered, so NEW_ORDER starts empty
            // and Delivery has work only for freshly entered orders.
            let mut orders = Vec::new();
            let mut order_lines = Vec::new();
            for o_id in 1..=scale.seed_orders_per_district {
                let c_id = rng.gen_range(1..=scale.customers_per_district);
                let ol_cnt = rng.gen_range(5..=10u64);
                orders.push(Row::new(vec![
                    u(w_id),
                    u(d_id),
                    u(o_id),
                    u(c_id),
                    u(0),
                    u(rng.gen_range(1..=10)),
                    u(ol_cnt),
                ]));
                for ol in 1..=ol_cnt {
                    order_lines.push(Row::new(vec![
                        u(w_id),
                        u(d_id),
                        u(o_id),
                        u(ol),
                        u(rng.gen_range(1..=scale.items)),
                        u(w_id),
                        u(5),
                        i(rng.gen_range(100..=999_900)),
                        u(1), // delivered at load time
                    ]));
                }
            }
            server.bulk_load(schema.orders, orders)?;
            server.bulk_load(schema.order_line, order_lines)?;
        }
    }
    server.checkpoint_now()?;
    Ok(())
}

fn nurand_seed(rng: &mut SimRng) -> u64 {
    nurand(rng, 255, 123, 0, 999)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{create_schema, TpccScale};
    use recobench_engine::{DiskLayout, InstanceConfig};
    use recobench_sim::SimClock;

    #[test]
    fn last_names_match_spec_examples() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(999), "EINGEINGEING");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        // Numbers wrap at 1000.
        assert_eq!(last_name(1371), "PRICALLYOUGHT");
    }

    #[test]
    fn nurand_stays_in_range() {
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1_000 {
            let v = nurand(&mut rng, 1023, 7, 1, 120);
            assert!((1..=120).contains(&v));
        }
    }

    #[test]
    fn nurand_is_nonuniform() {
        // The OR of two uniform draws is biased toward values with more
        // set bits; check the distribution is visibly skewed vs uniform.
        let mut rng = SimRng::seed_from(2);
        let n = 20_000;
        let mut low_half = 0u64;
        for _ in 0..n {
            if nurand(&mut rng, 8191, 0, 1, 8192) <= 4096 {
                low_half += 1;
            }
        }
        let frac = low_half as f64 / n as f64;
        assert!(frac < 0.45, "NURand should skew high, got low fraction {frac}");
    }

    #[test]
    fn filler_respects_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            let s = filler(&mut rng, 26, 50);
            assert!((26..=50).contains(&s.len()));
        }
    }

    #[test]
    fn load_produces_expected_row_counts() {
        let mut srv = DbServer::on_fresh_disks(
            "LOAD",
            SimClock::shared(),
            DiskLayout::four_disk(),
            InstanceConfig::default(),
        );
        srv.create_database().unwrap();
        let scale = TpccScale::tiny();
        let schema = create_schema(&mut srv, scale, 4, 2_048).unwrap();
        let mut rng = SimRng::seed_from(42);
        load_database(&mut srv, &schema, &mut rng).unwrap();
        assert_eq!(srv.peek_scan(schema.warehouse).unwrap().len() as u64, scale.warehouses);
        assert_eq!(
            srv.peek_scan(schema.district).unwrap().len() as u64,
            scale.warehouses * scale.districts_per_warehouse
        );
        assert_eq!(srv.peek_scan(schema.customer).unwrap().len() as u64, scale.total_customers());
        assert_eq!(srv.peek_scan(schema.item).unwrap().len() as u64, scale.items);
        assert_eq!(srv.peek_scan(schema.stock).unwrap().len() as u64, scale.total_stock());
        assert_eq!(
            srv.peek_scan(schema.orders).unwrap().len() as u64,
            scale.warehouses * scale.districts_per_warehouse * scale.seed_orders_per_district
        );
        assert!(srv.peek_scan(schema.new_order).unwrap().is_empty());
    }

    #[test]
    fn load_is_deterministic_for_a_seed() {
        let build = || {
            let mut srv = DbServer::on_fresh_disks(
                "DET",
                SimClock::shared(),
                DiskLayout::four_disk(),
                InstanceConfig::default(),
            );
            srv.create_database().unwrap();
            let schema = create_schema(&mut srv, TpccScale::tiny(), 4, 2_048).unwrap();
            let mut rng = SimRng::seed_from(7);
            load_database(&mut srv, &schema, &mut rng).unwrap();
            srv.peek_scan(schema.customer).unwrap()
        };
        assert_eq!(build(), build());
    }
}
