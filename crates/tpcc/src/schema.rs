//! The TPC-C schema: nine tables, their column layouts and indexes.
//!
//! Columns are positional (the engine is schema-light); the `col` modules
//! below give every position a name so transaction code stays readable.
//! Monetary amounts are stored in integer cents so index keys stay exact.

use recobench_engine::catalog::IndexDef;
use recobench_engine::{DbResult, DbServer, ObjectId};
use serde::{Deserialize, Serialize};

/// Scale of the generated database.
///
/// The paper runs full-scale TPC-C on real hardware; RecoBench runs a
/// reduced scale so a 240-experiment campaign executes in seconds, while
/// keeping the *structure* (row mix, access skew, growth behaviour) that
/// the recovery mechanisms react to. Restore timing uses the nominal
/// database size from the engine cost model, not these counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TpccScale {
    /// Number of warehouses.
    pub warehouses: u64,
    /// Districts per warehouse (spec: 10).
    pub districts_per_warehouse: u64,
    /// Customers per district (spec: 3 000; scaled down).
    pub customers_per_district: u64,
    /// Items in the catalog (spec: 100 000; scaled down).
    pub items: u64,
    /// Seed orders per district, pre-loaded as already-delivered history.
    pub seed_orders_per_district: u64,
}

impl TpccScale {
    /// The default reduced scale used throughout the benchmark.
    pub fn mini() -> Self {
        TpccScale {
            warehouses: 2,
            districts_per_warehouse: 10,
            customers_per_district: 120,
            items: 1_500,
            seed_orders_per_district: 8,
        }
    }

    /// An even smaller scale for fast unit tests.
    pub fn tiny() -> Self {
        TpccScale {
            warehouses: 1,
            districts_per_warehouse: 2,
            customers_per_district: 20,
            items: 100,
            seed_orders_per_district: 3,
        }
    }

    /// Total customers.
    pub fn total_customers(&self) -> u64 {
        self.warehouses * self.districts_per_warehouse * self.customers_per_district
    }

    /// Total stock rows (one per warehouse × item).
    pub fn total_stock(&self) -> u64 {
        self.warehouses * self.items
    }
}

impl Default for TpccScale {
    fn default() -> Self {
        Self::mini()
    }
}

/// Column positions for the WAREHOUSE table.
pub mod warehouse {
    /// Warehouse id.
    pub const W_ID: usize = 0;
    /// Warehouse name.
    pub const W_NAME: usize = 1;
    /// Year-to-date payments, in cents.
    pub const W_YTD: usize = 2;
    /// Tax rate in basis points.
    pub const W_TAX: usize = 3;
}

/// Column positions for the DISTRICT table.
pub mod district {
    /// Warehouse id.
    pub const D_W_ID: usize = 0;
    /// District id.
    pub const D_ID: usize = 1;
    /// District name.
    pub const D_NAME: usize = 2;
    /// Year-to-date payments, in cents.
    pub const D_YTD: usize = 3;
    /// Next order number.
    pub const D_NEXT_O_ID: usize = 4;
    /// Tax rate in basis points.
    pub const D_TAX: usize = 5;
}

/// Column positions for the CUSTOMER table.
pub mod customer {
    /// Warehouse id.
    pub const C_W_ID: usize = 0;
    /// District id.
    pub const C_D_ID: usize = 1;
    /// Customer id.
    pub const C_ID: usize = 2;
    /// Last name (generated from syllables).
    pub const C_LAST: usize = 3;
    /// First name.
    pub const C_FIRST: usize = 4;
    /// Balance, in cents.
    pub const C_BALANCE: usize = 5;
    /// Year-to-date payment, in cents.
    pub const C_YTD_PAYMENT: usize = 6;
    /// Payment count.
    pub const C_PAYMENT_CNT: usize = 7;
    /// Delivery count.
    pub const C_DELIVERY_CNT: usize = 8;
    /// Miscellaneous customer data (filler).
    pub const C_DATA: usize = 9;
}

/// Column positions for the HISTORY table.
pub mod history {
    /// Warehouse id.
    pub const H_W_ID: usize = 0;
    /// District id.
    pub const H_D_ID: usize = 1;
    /// Customer id.
    pub const H_C_ID: usize = 2;
    /// Amount, in cents.
    pub const H_AMOUNT: usize = 3;
    /// Free-form data (filler).
    pub const H_DATA: usize = 4;
}

/// Column positions for the NEW-ORDER table.
pub mod new_order {
    /// Warehouse id.
    pub const NO_W_ID: usize = 0;
    /// District id.
    pub const NO_D_ID: usize = 1;
    /// Order id.
    pub const NO_O_ID: usize = 2;
}

/// Column positions for the ORDERS table.
pub mod orders {
    /// Warehouse id.
    pub const O_W_ID: usize = 0;
    /// District id.
    pub const O_D_ID: usize = 1;
    /// Order id.
    pub const O_ID: usize = 2;
    /// Customer id.
    pub const O_C_ID: usize = 3;
    /// Entry timestamp (simulated micros).
    pub const O_ENTRY_D: usize = 4;
    /// Carrier id (0 = not yet delivered).
    pub const O_CARRIER_ID: usize = 5;
    /// Number of order lines.
    pub const O_OL_CNT: usize = 6;
}

/// Column positions for the ORDER-LINE table.
pub mod order_line {
    /// Warehouse id.
    pub const OL_W_ID: usize = 0;
    /// District id.
    pub const OL_D_ID: usize = 1;
    /// Order id.
    pub const OL_O_ID: usize = 2;
    /// Line number within the order.
    pub const OL_NUMBER: usize = 3;
    /// Item id.
    pub const OL_I_ID: usize = 4;
    /// Supplying warehouse.
    pub const OL_SUPPLY_W_ID: usize = 5;
    /// Quantity.
    pub const OL_QUANTITY: usize = 6;
    /// Amount, in cents.
    pub const OL_AMOUNT: usize = 7;
    /// Delivery timestamp (0 = undelivered).
    pub const OL_DELIVERY_D: usize = 8;
}

/// Column positions for the ITEM table.
pub mod item {
    /// Item id.
    pub const I_ID: usize = 0;
    /// Item name.
    pub const I_NAME: usize = 1;
    /// Price, in cents.
    pub const I_PRICE: usize = 2;
    /// Item data (filler; "ORIGINAL" marker per spec).
    pub const I_DATA: usize = 3;
}

/// Column positions for the STOCK table.
pub mod stock {
    /// Warehouse id.
    pub const S_W_ID: usize = 0;
    /// Item id.
    pub const S_I_ID: usize = 1;
    /// Quantity on hand.
    pub const S_QUANTITY: usize = 2;
    /// Year-to-date quantity sold.
    pub const S_YTD: usize = 3;
    /// Orders served.
    pub const S_ORDER_CNT: usize = 4;
    /// Remote orders served.
    pub const S_REMOTE_CNT: usize = 5;
    /// Stock data (filler).
    pub const S_DATA: usize = 6;
}

/// Object ids of the nine TPC-C tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpccSchema {
    /// WAREHOUSE.
    pub warehouse: ObjectId,
    /// DISTRICT.
    pub district: ObjectId,
    /// CUSTOMER.
    pub customer: ObjectId,
    /// HISTORY.
    pub history: ObjectId,
    /// NEW-ORDER.
    pub new_order: ObjectId,
    /// ORDERS.
    pub orders: ObjectId,
    /// ORDER-LINE.
    pub order_line: ObjectId,
    /// ITEM.
    pub item: ObjectId,
    /// STOCK.
    pub stock: ObjectId,
    /// The scale the database was created with.
    pub scale: TpccScale,
}

/// Index positions that transaction code relies on.
pub mod ix {
    /// Primary key is always index 0.
    pub const PK: usize = 0;
    /// CUSTOMER secondary index on `(w, d, last-name)`.
    pub const CUSTOMER_BY_LAST: usize = 1;
    /// ORDERS secondary index on `(w, d, c, o)` — a customer's orders in
    /// order-id order.
    pub const ORDERS_BY_CUSTOMER: usize = 1;
}

/// Name of the tablespace holding all TPC-C segments.
pub const TPCC_TABLESPACE: &str = "TPCC";
/// Name of the owning user.
pub const TPCC_USER: &str = "tpcc";

/// Creates the TPC-C user, tablespace and the nine tables with their
/// indexes. `datafiles`/`blocks_per_file` size the tablespace.
///
/// # Errors
///
/// Fails if the schema already exists or storage creation fails.
pub fn create_schema(
    server: &mut DbServer,
    scale: TpccScale,
    datafiles: u32,
    blocks_per_file: u64,
) -> DbResult<TpccSchema> {
    server.create_user(TPCC_USER)?;
    server.create_tablespace(TPCC_TABLESPACE, datafiles, blocks_per_file)?;
    // Range-scanned indexes keep a sorted tree; everything probed only by
    // its full key uses the hash-backed point store.
    let pk = |cols: Vec<usize>| IndexDef { name: "PK".into(), cols, unique: true, ordered: true };
    let point_pk =
        |cols: Vec<usize>| IndexDef { name: "PK".into(), cols, unique: true, ordered: false };
    let warehouse = server.create_table("WAREHOUSE", TPCC_USER, TPCC_TABLESPACE, vec![point_pk(vec![0])])?;
    let district =
        server.create_table("DISTRICT", TPCC_USER, TPCC_TABLESPACE, vec![point_pk(vec![0, 1])])?;
    let customer = server.create_table(
        "CUSTOMER",
        TPCC_USER,
        TPCC_TABLESPACE,
        vec![
            point_pk(vec![customer::C_W_ID, customer::C_D_ID, customer::C_ID]),
            IndexDef {
                name: "CUSTOMER_BY_LAST".into(),
                cols: vec![customer::C_W_ID, customer::C_D_ID, customer::C_LAST],
                unique: false,
                ordered: true,
            },
        ],
    )?;
    let history = server.create_table(
        "HISTORY",
        TPCC_USER,
        TPCC_TABLESPACE,
        vec![IndexDef {
            name: "HISTORY_BY_CUSTOMER".into(),
            cols: vec![history::H_W_ID, history::H_D_ID, history::H_C_ID],
            unique: false,
            ordered: false,
        }],
    )?;
    let new_order =
        server.create_table("NEW_ORDER", TPCC_USER, TPCC_TABLESPACE, vec![pk(vec![0, 1, 2])])?;
    let orders = server.create_table(
        "ORDERS",
        TPCC_USER,
        TPCC_TABLESPACE,
        vec![
            point_pk(vec![orders::O_W_ID, orders::O_D_ID, orders::O_ID]),
            IndexDef {
                name: "ORDERS_BY_CUSTOMER".into(),
                cols: vec![orders::O_W_ID, orders::O_D_ID, orders::O_C_ID, orders::O_ID],
                unique: false,
                ordered: true,
            },
        ],
    )?;
    let order_line =
        server.create_table("ORDER_LINE", TPCC_USER, TPCC_TABLESPACE, vec![pk(vec![0, 1, 2, 3])])?;
    let item = server.create_table("ITEM", TPCC_USER, TPCC_TABLESPACE, vec![point_pk(vec![item::I_ID])])?;
    let stock = server.create_table(
        "STOCK",
        TPCC_USER,
        TPCC_TABLESPACE,
        vec![point_pk(vec![stock::S_W_ID, stock::S_I_ID])],
    )?;
    Ok(TpccSchema {
        warehouse,
        district,
        customer,
        history,
        new_order,
        orders,
        order_line,
        item,
        stock,
        scale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recobench_engine::{DiskLayout, InstanceConfig};
    use recobench_sim::SimClock;

    #[test]
    fn schema_creates_all_tables() {
        let mut srv = DbServer::on_fresh_disks(
            "SCH",
            SimClock::shared(),
            DiskLayout::four_disk(),
            InstanceConfig::default(),
        );
        srv.create_database().unwrap();
        let schema = create_schema(&mut srv, TpccScale::tiny(), 2, 512).unwrap();
        for name in [
            "WAREHOUSE",
            "DISTRICT",
            "CUSTOMER",
            "HISTORY",
            "NEW_ORDER",
            "ORDERS",
            "ORDER_LINE",
            "ITEM",
            "STOCK",
        ] {
            assert!(srv.table_id(name).is_ok(), "missing table {name}");
        }
        assert_eq!(srv.table_id("STOCK").unwrap(), schema.stock);
    }

    #[test]
    fn scale_totals() {
        let s = TpccScale::mini();
        assert_eq!(s.total_customers(), 2 * 10 * 120);
        assert_eq!(s.total_stock(), 2 * 1_500);
    }
}
