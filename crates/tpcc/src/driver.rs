//! The closed-loop terminal driver — the paper's "remote terminal
//! emulator", extended (as §4 of the paper describes) to record the base
//! data for the recovery and integrity measures.
//!
//! The driver multiplexes N simulated terminals onto one single-threaded
//! server as a discrete-event scheduler: each terminal cycles through
//! *think → keying → statements → commit*, yielding to the other
//! terminals between statements. A statement that hits a lock conflict
//! parks its terminal (no reschedule) until the engine reports the grant;
//! a deadlock victim rolls back and replays the same transaction after a
//! think time. Interleaving arises naturally because every engine call
//! advances the shared [`SimClock`](recobench_sim::SimClock) while other
//! terminals' ready times stand still.
//!
//! Every measure is taken **from the end-user point of view**:
//!
//! * *throughput* (tpmC) counts committed New-Order transactions per
//!   minute;
//! * *recovery time* runs from the first failed transaction after a fault
//!   until the first successful transaction after service restoration —
//!   which includes instance recovery *and* re-establishing transaction
//!   execution at the client, exactly as the paper measures it;
//! * *lost transactions* are commit acknowledgements recorded client-side
//!   whose effects are absent from the database after recovery.

use recobench_engine::{DbError, DbResult, DbServer, SessionId};
use recobench_sim::{EventQueue, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::schema::{ix, TpccSchema};
use crate::tx::{Audit, InFlight, StmtResult, TxnKind};
use recobench_engine::row::Value;

/// Driver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriverConfig {
    /// Number of emulated terminals.
    pub terminals: usize,
    /// Mean think time between a terminal's transactions (uniformly
    /// jittered ±50 %). Scaled down from the spec's tens of seconds, like
    /// the database itself.
    pub mean_think: SimDuration,
    /// Mean keying time between drawing a transaction's inputs and
    /// submitting its first statement (uniformly jittered ±50 %).
    #[serde(default = "default_mean_keying")]
    pub mean_keying: SimDuration,
    /// How long a terminal waits before retrying after an error.
    pub retry_interval: SimDuration,
}

fn default_mean_keying() -> SimDuration {
    SimDuration::from_millis(90)
}

impl Default for DriverConfig {
    fn default() -> Self {
        // Think + keying sum to the 340 ms cycle the calibration was done
        // against (DESIGN.md §6): the old single think time implicitly
        // lumped keying, so splitting it must not change the redo rate.
        DriverConfig {
            terminals: 12,
            mean_think: SimDuration::from_millis(250),
            mean_keying: default_mean_keying(),
            retry_interval: SimDuration::from_millis(1_000),
        }
    }
}

/// The end-user availability timeline over a window: committed
/// transactions per second, plus the instants service was lost and came
/// back, all as the *client* saw them. This is the ResBench-style view the
/// breakdown report plots: not just "recovery took 34 s" but the shape of
/// the outage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AvailabilityTimeline {
    /// Window start, µs of sim time.
    pub start_us: u64,
    /// Bucket width, µs (one second).
    pub bucket_us: u64,
    /// Successful transaction completions per bucket, covering
    /// `[start, end)` in order.
    pub buckets: Vec<u64>,
    /// First errored attempt in the window (service-loss instant), µs.
    pub first_error_us: Option<u64>,
    /// First successful completion after `first_error_us` (service-return
    /// instant), µs. `None` when service never failed or never returned.
    pub service_return_us: Option<u64>,
}

impl AvailabilityTimeline {
    /// Seconds of the window with zero successful completions.
    pub fn zero_seconds(&self) -> u64 {
        self.buckets.iter().filter(|&&b| b == 0).count() as u64
    }

    /// Total successful completions in the window.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The timeline as one hand-rolled JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(32 + self.buckets.len() * 4);
        let _ = write!(out, "{{\"start_us\":{},\"bucket_us\":{},\"buckets\":[", self.start_us, self.bucket_us);
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        let _ = write!(
            out,
            "],\"first_error_us\":{},\"service_return_us\":{}}}",
            self.first_error_us.map_or("null".to_string(), |v| v.to_string()),
            self.service_return_us.map_or("null".to_string(), |v| v.to_string()),
        );
        out
    }
}

/// One committed New-Order acknowledgement, as the client saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommittedOrder {
    /// Warehouse.
    pub w: u64,
    /// District.
    pub d: u64,
    /// Order id.
    pub o: u64,
    /// `O_ENTRY_D` the transaction wrote (identity across id reuse).
    pub entry: u64,
    /// When the commit was acknowledged.
    pub at: SimTime,
}

/// What one driver step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepEvent {
    /// When the transaction finished (or failed).
    pub at: SimTime,
    /// The profile that ran.
    pub kind: TxnKind,
    /// Whether it committed (deliberate rollbacks count as `false` but are
    /// not errors).
    pub ok: bool,
    /// Whether the attempt failed with an error.
    pub error: bool,
}

/// Per-kind success counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MixCounts {
    /// Committed New-Orders.
    pub new_order: u64,
    /// Committed Payments.
    pub payment: u64,
    /// Completed Order-Status queries.
    pub order_status: u64,
    /// Committed Deliveries.
    pub delivery: u64,
    /// Completed Stock-Level queries.
    pub stock_level: u64,
}

/// One emulated terminal: its engine session, the transaction it is in the
/// middle of (if any), and whether it is parked on a lock wait.
#[derive(Debug, Default)]
struct Terminal {
    sid: Option<SessionId>,
    inflight: Option<InFlight>,
    blocked: bool,
}

/// What to do with a terminal after one of its statements ran.
enum StmtFate {
    /// More statements remain; terminal stays runnable.
    Continue,
    /// Terminal parked on a lock wait; the grant will reschedule it.
    Parked,
    /// Deadlock victim: rolled back, transaction will replay.
    Replay,
    /// The transaction finished or failed.
    Finished(StepEvent),
}

/// The terminal driver.
#[derive(Debug)]
pub struct TpccDriver {
    schema: TpccSchema,
    cfg: DriverConfig,
    rng: SimRng,
    ready: EventQueue<usize>,
    terminals: Vec<Terminal>,
    /// Client-side audit log of acknowledged New-Order commits.
    committed_orders: Vec<CommittedOrder>,
    /// Timestamps of every successful transaction completion.
    successes: Vec<SimTime>,
    /// Timestamps of every errored attempt.
    errors: Vec<SimTime>,
    counts: MixCounts,
    attempted: u64,
    deliberate_rollbacks: u64,
    deadlock_aborts: u64,
}

impl TpccDriver {
    /// Creates a driver whose terminals become ready shortly after
    /// `start`.
    pub fn new(schema: TpccSchema, cfg: DriverConfig, mut rng: SimRng, start: SimTime) -> Self {
        let mut ready = EventQueue::new();
        for t in 0..cfg.terminals {
            // Stagger initial readiness so terminals do not phase-lock.
            let offset = SimDuration::from_micros(rng.gen_range(0..cfg.mean_think.as_micros().max(1)));
            ready.push(start + offset, t);
        }
        let terminals = (0..cfg.terminals).map(|_| Terminal::default()).collect();
        TpccDriver {
            schema,
            cfg,
            rng,
            ready,
            terminals,
            committed_orders: Vec::new(),
            successes: Vec::new(),
            errors: Vec::new(),
            counts: MixCounts::default(),
            attempted: 0,
            deliberate_rollbacks: 0,
            deadlock_aborts: 0,
        }
    }

    /// When the next terminal is ready to run.
    pub fn next_ready(&self) -> SimTime {
        self.ready.peek_time().expect("runnable terminals are always rescheduled")
    }

    fn think(&mut self) -> SimDuration {
        let mean = self.cfg.mean_think.as_micros().max(1);
        SimDuration::from_micros(self.rng.gen_range(mean / 2..=mean * 3 / 2))
    }

    fn keying(&mut self) -> SimDuration {
        let mean = self.cfg.mean_keying.as_micros().max(1);
        SimDuration::from_micros(self.rng.gen_range(mean / 2..=mean * 3 / 2))
    }

    /// Unparks terminals whose pending lock the engine granted since the
    /// last call, rescheduling each at its grant instant.
    fn wake_granted(&mut self, server: &mut DbServer) {
        for (sid, at) in server.take_lock_grants() {
            if let Some(t) = self.terminals.iter().position(|term| term.sid == Some(sid)) {
                if self.terminals[t].blocked {
                    self.terminals[t].blocked = false;
                    self.ready.push(at, t);
                }
            }
        }
    }

    /// Fails parked terminals whose session the server severed (crash,
    /// cold backup, recovery): their grant will never come, so the client
    /// sees an error and retries from scratch after the retry interval.
    fn sweep_severed(&mut self, server: &mut DbServer) {
        let now = server.clock().now();
        for t in 0..self.terminals.len() {
            let severed = {
                let term = &self.terminals[t];
                term.blocked && !term.sid.is_some_and(|sid| server.session_exists(sid))
            };
            if severed {
                let term = &mut self.terminals[t];
                term.blocked = false;
                term.sid = None;
                term.inflight = None;
                self.errors.push(now);
                self.ready.push(now + self.cfg.retry_interval, t);
            }
        }
    }

    fn ensure_session(&mut self, server: &mut DbServer, t: usize) -> DbResult<()> {
        match self.terminals[t].sid {
            Some(sid) if server.session_exists(sid) => Ok(()),
            _ => {
                let sid = server.connect()?;
                self.terminals[t].sid = Some(sid);
                Ok(())
            }
        }
    }

    /// Runs one statement of terminal `t`'s in-flight transaction and
    /// classifies the outcome. Does not reschedule — the caller owns the
    /// scheduling policy (stepping vs draining).
    fn run_statement(&mut self, server: &mut DbServer, t: usize) -> StmtFate {
        let sid = self.terminals[t].sid.expect("an in-flight terminal keeps its session");
        let result = {
            let schema = self.schema;
            self.terminals[t]
                .inflight
                .as_mut()
                .expect("caller checked in-flight")
                .step(server, sid, &schema)
        };
        let now = server.clock().now();
        match result {
            Ok(StmtResult::Continue) => StmtFate::Continue,
            Ok(StmtResult::Done(outcome)) => {
                self.terminals[t].inflight = None;
                if outcome.committed {
                    self.successes.push(now);
                    match outcome.kind {
                        TxnKind::NewOrder => self.counts.new_order += 1,
                        TxnKind::Payment => self.counts.payment += 1,
                        TxnKind::OrderStatus => self.counts.order_status += 1,
                        TxnKind::Delivery => self.counts.delivery += 1,
                        TxnKind::StockLevel => self.counts.stock_level += 1,
                    }
                    if let Audit::Order { w, d, o, entry } = outcome.audit {
                        self.committed_orders.push(CommittedOrder { w, d, o, entry, at: now });
                    }
                } else {
                    self.deliberate_rollbacks += 1;
                }
                StmtFate::Finished(StepEvent { at: now, kind: outcome.kind, ok: outcome.committed, error: false })
            }
            Err(DbError::LockWait { .. }) => {
                self.terminals[t].blocked = true;
                StmtFate::Parked
            }
            Err(DbError::Deadlock { .. }) => {
                // This transaction is the victim: the engine already chose
                // it deterministically. Roll back (releasing our locks and
                // waking the survivor) and replay the same inputs.
                let _ = server.rollback(sid);
                self.deadlock_aborts += 1;
                if let Some(f) = self.terminals[t].inflight.as_mut() {
                    f.restart();
                }
                StmtFate::Replay
            }
            Err(_e) => {
                let kind = self.terminals[t]
                    .inflight
                    .as_ref()
                    .map_or(TxnKind::NewOrder, InFlight::kind);
                let _ = server.rollback(sid);
                if !server.session_exists(sid) {
                    self.terminals[t].sid = None;
                }
                self.terminals[t].inflight = None;
                self.terminals[t].blocked = false;
                self.errors.push(now);
                StmtFate::Finished(StepEvent { at: now, kind, ok: false, error: true })
            }
        }
    }

    /// Advances the simulation until one terminal's transaction completes
    /// (or fails), interleaving other terminals' statements along the way.
    /// The shared clock moves through ready times and the engine work each
    /// statement performs.
    pub fn step(&mut self, server: &mut DbServer) -> StepEvent {
        loop {
            self.wake_granted(server);
            self.sweep_severed(server);
            let (ready_at, t) = self
                .ready
                .pop()
                .expect("a runnable terminal always exists (deadlock detection keeps chains acyclic)");
            server.clock().advance_to(ready_at);
            server.poll();
            let now = server.clock().now();
            if self.terminals[t].inflight.is_none() {
                // Idle: draw the next transaction and key it in.
                let kind = TxnKind::draw(&mut self.rng);
                self.attempted += 1;
                if self.ensure_session(server, t).is_err() {
                    self.errors.push(now);
                    self.ready.push(now + self.cfg.retry_interval, t);
                    return StepEvent { at: now, kind, ok: false, error: true };
                }
                let inflight = InFlight::new(&self.schema, &mut self.rng, kind, now.as_micros());
                self.terminals[t].inflight = Some(inflight);
                let keying = self.keying();
                self.ready.push(now + keying, t);
                continue;
            }
            match self.run_statement(server, t) {
                StmtFate::Continue => {
                    // Yield between statements: equal-time FIFO lets other
                    // ready terminals interleave.
                    self.ready.push(server.clock().now(), t);
                }
                StmtFate::Parked => {}
                StmtFate::Replay => {
                    let think = self.think();
                    self.ready.push(server.clock().now() + think, t);
                }
                StmtFate::Finished(ev) => {
                    let delay = if ev.error { self.cfg.retry_interval } else { self.think() };
                    self.ready.push(ev.at + delay, t);
                    return ev;
                }
            }
        }
    }

    /// Drops every terminal's client-side connection state. The harness
    /// calls this when it redirects the driver at a *different* server
    /// (stand-by failover): the old node's session ids mean nothing there
    /// and could even collide with ids the new node hands out. Terminals
    /// that were mid-transaction record a client-visible error and retry.
    pub fn sever_all(&mut self, now: SimTime) {
        for t in 0..self.terminals.len() {
            let term = &mut self.terminals[t];
            let had_work = term.inflight.is_some();
            term.sid = None;
            term.inflight = None;
            if term.blocked {
                // Parked terminals are not in the ready queue; requeue.
                term.blocked = false;
                self.ready.push(now + self.cfg.retry_interval, t);
            }
            if had_work {
                self.errors.push(now);
            }
        }
    }

    /// Drains every in-flight transaction to completion without starting
    /// new ones, then rolls back and disconnects whatever could not finish
    /// and reseeds the ready queue. The experiment harness calls this
    /// before evaluating oracles so no uncommitted terminal state shadows
    /// the comparison.
    pub fn quiesce(&mut self, server: &mut DbServer) {
        let mut guard = 0u32;
        while self.terminals.iter().any(|term| term.inflight.is_some()) && guard < 1_000_000 {
            guard += 1;
            self.wake_granted(server);
            self.sweep_severed(server);
            let Some((ready_at, t)) = self.ready.pop() else { break };
            server.clock().advance_to(ready_at);
            server.poll();
            if self.terminals[t].inflight.is_none() {
                continue; // drained — do not submit new work
            }
            match self.run_statement(server, t) {
                StmtFate::Continue => {
                    self.ready.push(server.clock().now(), t);
                }
                StmtFate::Parked => {}
                StmtFate::Replay => {
                    // Retry immediately: the drain wants completion, not
                    // realistic pacing.
                    self.ready.push(server.clock().now(), t);
                }
                StmtFate::Finished(_) => {}
            }
        }
        // Force whatever is left (e.g. a terminal parked forever because
        // the survivor of its conflict was itself drained mid-wait).
        for term in &mut self.terminals {
            if let Some(sid) = term.sid.take() {
                if server.session_exists(sid) {
                    server.disconnect(sid); // rolls back any open txn
                }
            }
            term.inflight = None;
            term.blocked = false;
        }
        // All terminals idle: reseed the ready queue so stepping can
        // resume afterwards.
        self.ready.clear();
        let now = server.clock().now();
        for t in 0..self.terminals.len() {
            let offset = SimDuration::from_micros(self.rng.gen_range(0..self.cfg.mean_think.as_micros().max(1)));
            self.ready.push(now + offset, t);
        }
    }

    /// Committed New-Orders per minute over `[from, to)`.
    pub fn tpmc(&self, from: SimTime, to: SimTime) -> f64 {
        let window = to.saturating_since(from).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        let n = self
            .committed_orders
            .iter()
            .filter(|c| c.at >= from && c.at < to)
            .count();
        n as f64 * 60.0 / window
    }

    /// First errored attempt at or after `t` (service-loss detection).
    pub fn first_error_after(&self, t: SimTime) -> Option<SimTime> {
        self.errors.iter().copied().find(|&e| e >= t)
    }

    /// Records a service loss the client observed at `at` without running
    /// a transaction — the experiment harness calls this at fault
    /// activation, where the client's in-flight attempt fails while the
    /// recovery procedure monopolizes the timeline.
    pub fn record_outage(&mut self, at: SimTime) {
        self.errors.push(at);
    }

    /// First successful completion at or after `t` (service restoration).
    pub fn first_success_after(&self, t: SimTime) -> Option<SimTime> {
        self.successes.iter().copied().find(|&s| s >= t)
    }

    /// The end-user availability timeline over `[from, to)`: per-second
    /// successful-completion counts, the first error in the window, and
    /// the first success after that error.
    pub fn availability_timeline(&self, from: SimTime, to: SimTime) -> AvailabilityTimeline {
        const BUCKET_US: u64 = 1_000_000;
        let start_us = from.as_micros();
        let end_us = to.as_micros().max(start_us);
        let n = (end_us - start_us).div_ceil(BUCKET_US);
        let mut buckets = vec![0u64; n as usize];
        for s in &self.successes {
            let t = s.as_micros();
            if t >= start_us && t < end_us {
                buckets[((t - start_us) / BUCKET_US) as usize] += 1;
            }
        }
        let first_error = self
            .errors
            .iter()
            .copied()
            .find(|e| e.as_micros() >= start_us && e.as_micros() < end_us);
        // Strictly after: a success in the same microsecond as the first
        // error is the last pre-fault completion, not the restoration.
        let service_return = first_error
            .and_then(|e| self.successes.iter().copied().find(|&s| s > e))
            .filter(|s| s.as_micros() < end_us);
        AvailabilityTimeline {
            start_us,
            bucket_us: BUCKET_US,
            buckets,
            first_error_us: first_error.map(|t| t.as_micros()),
            service_return_us: service_return.map(|t| t.as_micros()),
        }
    }

    /// The client-side audit log.
    pub fn committed_orders(&self) -> &[CommittedOrder] {
        &self.committed_orders
    }

    /// Per-kind commit counters.
    pub fn counts(&self) -> MixCounts {
        self.counts
    }

    /// Attempts, including failures and deliberate rollbacks. A deadlock
    /// replay is the *same* attempt, not a new one.
    pub fn attempted(&self) -> u64 {
        self.attempted
    }

    /// Errored attempts so far.
    pub fn error_count(&self) -> u64 {
        self.errors.len() as u64
    }

    /// Transactions aborted as deadlock victims and replayed.
    pub fn deadlock_aborts(&self) -> u64 {
        self.deadlock_aborts
    }

    /// Every errored attempt's timestamp, in submission order — the raw
    /// series behind [`TpccDriver::availability_timeline`], for harnesses
    /// that need the full outage structure of multi-fault runs rather
    /// than the first loss/return pair.
    pub fn error_times(&self) -> &[SimTime] {
        &self.errors
    }

    /// Every successful completion's timestamp, in completion order.
    pub fn success_times(&self) -> &[SimTime] {
        &self.successes
    }

    /// The spec-mandated 1 % New-Order rollbacks observed.
    pub fn deliberate_rollbacks(&self) -> u64 {
        self.deliberate_rollbacks
    }

    /// Counts acknowledged-committed New-Orders that are **absent** from
    /// `server` — the paper's *lost transactions* measure. Orders
    /// committed against a different incarnation are detected by primary
    /// key through the zero-cost inspection interface.
    ///
    /// # Errors
    ///
    /// Fails if the database cannot be inspected at all.
    pub fn audit_lost_orders(&self, server: &DbServer) -> Result<u64, DbError> {
        let mut lost = 0u64;
        // Consecutively committed orders cluster in the same heap blocks,
        // so a memoizing reader decodes each block once for the whole
        // audit instead of once per order.
        let mut reader = server.peek_reader();
        for c in &self.committed_orders {
            let rids = server.peek_lookup(
                self.schema.orders,
                ix::PK,
                &[Value::U64(c.w), Value::U64(c.d), Value::U64(c.o)],
            )?;
            let mut found = false;
            for rid in rids {
                if let Ok(Some(row)) = reader.row(self.schema.orders, rid) {
                    if row.get(crate::schema::orders::O_ENTRY_D).and_then(Value::as_u64)
                        == Some(c.entry)
                    {
                        found = true;
                        break;
                    }
                }
            }
            if !found {
                lost += 1;
            }
        }
        Ok(lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::load_database;
    use crate::schema::{create_schema, TpccScale};
    use recobench_engine::{DiskLayout, InstanceConfig};
    use recobench_sim::SimClock;

    fn loaded() -> (DbServer, TpccSchema) {
        let mut srv = DbServer::on_fresh_disks(
            "DRV",
            SimClock::shared(),
            DiskLayout::four_disk(),
            InstanceConfig::default(),
        );
        srv.create_database().unwrap();
        let schema = create_schema(&mut srv, TpccScale::tiny(), 4, 2_048).unwrap();
        let mut rng = SimRng::seed_from(21);
        load_database(&mut srv, &schema, &mut rng).unwrap();
        (srv, schema)
    }

    /// Aggressive pacing: near-zero think/keying keeps many transactions
    /// in flight at once, forcing lock contention on the tiny scale.
    fn contended_cfg(terminals: usize) -> DriverConfig {
        DriverConfig {
            terminals,
            mean_think: SimDuration::from_micros(200),
            mean_keying: SimDuration::from_micros(50),
            retry_interval: SimDuration::from_millis(100),
        }
    }

    #[test]
    fn driver_executes_and_advances_time() {
        let (mut srv, schema) = loaded();
        let start = srv.clock().now();
        let mut driver =
            TpccDriver::new(schema, DriverConfig::default(), SimRng::seed_from(1), start);
        for _ in 0..200 {
            driver.step(&mut srv);
        }
        assert!(srv.clock().now() > start);
        assert!(driver.counts().new_order > 0);
        assert!(driver.counts().payment > 0);
        assert_eq!(driver.error_count(), 0);
        // Completions pace attempts: every step finishes one transaction,
        // and at most `terminals` submissions are still in flight.
        assert!(driver.attempted() >= 200);
        assert!(driver.attempted() <= 200 + DriverConfig::default().terminals as u64);
        driver.quiesce(&mut srv);
        assert_eq!(srv.session_count(), 0, "quiesce disconnects every terminal");
    }

    #[test]
    fn contended_run_interleaves_waits_and_stays_consistent() {
        let (mut srv, schema) = loaded();
        let start = srv.clock().now();
        let mut driver = TpccDriver::new(schema, contended_cfg(8), SimRng::seed_from(9), start);
        for _ in 0..400 {
            driver.step(&mut srv);
        }
        driver.quiesce(&mut srv);
        let stats = srv.stats();
        assert!(stats.lock_waits > 0, "8 fast terminals on tiny scale must contend");
        assert!(
            stats.lock_grants <= stats.lock_waits,
            "a grant only ever resolves a recorded wait"
        );
        assert_eq!(driver.deadlock_aborts(), stats.deadlocks, "driver and engine agree");
        assert_eq!(driver.error_count(), 0, "waits and deadlocks are not client errors");
        let report = crate::consistency::check_consistency(&srv, &schema).unwrap();
        assert!(report.is_consistent(), "violations: {:?}", report.violations);
        assert!(srv.verify_integrity().unwrap().is_clean());
    }

    #[test]
    fn tpmc_counts_only_new_orders_in_window() {
        let (mut srv, schema) = loaded();
        let start = srv.clock().now();
        let mut driver =
            TpccDriver::new(schema, DriverConfig::default(), SimRng::seed_from(2), start);
        for _ in 0..300 {
            driver.step(&mut srv);
        }
        let end = srv.clock().now();
        let tpmc = driver.tpmc(start, end);
        assert!(tpmc > 0.0);
        // Windows are half-open, so a commit at exactly `end` belongs to the
        // next window; start strictly after the last event to see nothing.
        let after = end + SimDuration::from_secs(1);
        assert_eq!(driver.tpmc(after, after + SimDuration::from_secs(60)), 0.0);
    }

    #[test]
    fn errors_are_recorded_when_instance_is_down() {
        let (mut srv, schema) = loaded();
        let start = srv.clock().now();
        let mut driver =
            TpccDriver::new(schema, DriverConfig::default(), SimRng::seed_from(3), start);
        for _ in 0..20 {
            driver.step(&mut srv);
        }
        let fault_at = srv.clock().now();
        srv.shutdown_abort().unwrap();
        for _ in 0..15 {
            driver.step(&mut srv);
        }
        assert!(driver.error_count() >= 15);
        assert!(driver.first_error_after(fault_at).is_some());
        // Recovery restores service; the driver sees successes again.
        srv.startup().unwrap();
        let recovered_at = srv.clock().now();
        for _ in 0..30 {
            driver.step(&mut srv);
        }
        assert!(driver.first_success_after(recovered_at).is_some());
    }

    #[test]
    fn availability_timeline_buckets_are_monotone_in_sim_time() {
        let (mut srv, schema) = loaded();
        let start = srv.clock().now();
        let mut driver =
            TpccDriver::new(schema, DriverConfig::default(), SimRng::seed_from(6), start);
        for _ in 0..40 {
            driver.step(&mut srv);
        }
        let fault_at = srv.clock().now();
        srv.shutdown_abort().unwrap();
        for _ in 0..15 {
            driver.step(&mut srv);
        }
        srv.startup().unwrap();
        for _ in 0..60 {
            driver.step(&mut srv);
        }
        let end = srv.clock().now() + SimDuration::from_secs(1);

        // Success instants arrive in nondecreasing sim time, so every
        // recorded success falls in a bucket at or after the previous
        // one's: the bucketed cumulative count is monotone.
        let mut prev = SimTime::ZERO;
        for &s in &driver.successes {
            assert!(s >= prev, "success instants must be nondecreasing");
            prev = s;
        }
        let tl = driver.availability_timeline(start, end);
        assert_eq!(tl.start_us, start.as_micros());
        assert_eq!(tl.total(), driver.successes.len() as u64, "every success lands in a bucket");
        assert!(tl.zero_seconds() > 0, "the outage shows up as empty seconds");
        let first_error = tl.first_error_us.expect("the fault produced errors");
        let back = tl.service_return_us.expect("service returned in-window");
        assert!(first_error >= fault_at.as_micros());
        assert!(back > first_error, "service returns strictly after it was lost");
        // Buckets strictly between loss and return hold no successes.
        let lo = ((first_error - tl.start_us) / tl.bucket_us + 1) as usize;
        let hi = ((back - tl.start_us) / tl.bucket_us) as usize;
        for b in &tl.buckets[lo.min(tl.buckets.len())..hi.min(tl.buckets.len())] {
            assert_eq!(*b, 0, "no successes between service loss and return");
        }
        // JSON round-trips structurally: the serialized form mentions every
        // field once.
        let json = tl.to_json();
        for key in ["start_us", "bucket_us", "buckets", "first_error_us", "service_return_us"] {
            assert!(json.contains(key), "JSON must carry {key}");
        }
    }

    #[test]
    fn audit_finds_no_lost_orders_without_faults() {
        let (mut srv, schema) = loaded();
        let start = srv.clock().now();
        let mut driver =
            TpccDriver::new(schema, DriverConfig::default(), SimRng::seed_from(4), start);
        for _ in 0..200 {
            driver.step(&mut srv);
        }
        assert!(!driver.committed_orders().is_empty());
        assert_eq!(driver.audit_lost_orders(&srv).unwrap(), 0);
    }

    #[test]
    fn audit_detects_losses_after_crash_without_flush_is_zero_but_pitr_loses() {
        // Crash recovery must lose nothing (complete recovery)…
        let (mut srv, schema) = loaded();
        srv.take_cold_backup().unwrap();
        let start = srv.clock().now();
        let mut driver =
            TpccDriver::new(schema, DriverConfig::default(), SimRng::seed_from(5), start);
        for _ in 0..100 {
            driver.step(&mut srv);
        }
        srv.shutdown_abort().unwrap();
        srv.startup().unwrap();
        assert_eq!(driver.audit_lost_orders(&srv).unwrap(), 0, "crash loses no committed work");
        // …while point-in-time recovery to an earlier SCN does lose work.
        let stop = srv.current_scn();
        for _ in 0..100 {
            driver.step(&mut srv);
        }
        srv.recover_database_until(stop).unwrap();
        assert!(driver.audit_lost_orders(&srv).unwrap() > 0, "PITR sacrifices the tail");
    }

    #[test]
    fn same_seed_same_terminals_is_deterministic() {
        let run = |seed: u64| {
            let (mut srv, schema) = loaded();
            let start = srv.clock().now();
            let mut driver = TpccDriver::new(schema, contended_cfg(8), SimRng::seed_from(seed), start);
            let mut trace = Vec::new();
            for _ in 0..150 {
                let ev = driver.step(&mut srv);
                trace.push((ev.at, ev.kind, ev.ok, ev.error));
            }
            driver.quiesce(&mut srv);
            (trace, srv.peek_scan(schema.orders).unwrap(), srv.stats().deadlocks)
        };
        let (t1, rows1, d1) = run(7);
        let (t2, rows2, d2) = run(7);
        assert_eq!(t1, t2, "step traces replay byte-identically");
        assert_eq!(rows1, rows2, "final table state replays identically");
        assert_eq!(d1, d2);
        let (t3, _, _) = run(8);
        assert_ne!(t1, t3, "a different seed takes a different path");
    }
}
