//! The five TPC-C transaction profiles as resumable statement machines.
//!
//! Each profile pre-draws its inputs (clause 2 of the specification, with
//! ranges adapted to the configured scale) and then executes as a sequence
//! of *statements* against one engine session. Every statement performs at
//! most one lock-acquiring DML call, and performs it last — so when the
//! engine answers [`DbError::LockWait`] the statement left no trace and
//! can simply be re-issued once the lock is granted (re-reading its
//! inputs, which may have changed while the terminal was parked). A
//! [`DbError::Deadlock`] means this transaction was chosen as the victim:
//! the driver rolls the session back and restarts the profile from its
//! first statement with the same inputs.
//!
//! The statement machine is what lets the driver interleave many
//! terminals on one single-threaded server: terminals yield between
//! statements, block on lock waits, and resume on grants, all in
//! deterministic simulated time.

use recobench_engine::row::{Row, Value};
use recobench_engine::{DbError, DbResult, DbServer, RowId, SessionId};
use recobench_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::gen::{last_name, nurand};
use crate::schema::{self, ix, TpccSchema};

/// The transaction mix classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxnKind {
    /// New-Order (45 % of the mix; the tpmC-counted class).
    NewOrder,
    /// Payment (43 %).
    Payment,
    /// Order-Status (4 %, read-only).
    OrderStatus,
    /// Delivery (4 %).
    Delivery,
    /// Stock-Level (4 %, read-only).
    StockLevel,
}

impl TxnKind {
    /// Draws a kind with the standard 45/43/4/4/4 weights.
    pub fn draw(rng: &mut SimRng) -> TxnKind {
        let p = rng.gen_range(0..100u32);
        match p {
            0..=44 => TxnKind::NewOrder,
            45..=87 => TxnKind::Payment,
            88..=91 => TxnKind::OrderStatus,
            92..=95 => TxnKind::Delivery,
            _ => TxnKind::StockLevel,
        }
    }
}

/// What a committed transaction left behind, for the driver's audit log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Audit {
    /// A New-Order commit created order `(w, d, o)` with the given entry
    /// timestamp (which disambiguates an order id reused after incomplete
    /// recovery rolled the id allocator back).
    Order {
        /// Warehouse.
        w: u64,
        /// District.
        d: u64,
        /// Order id.
        o: u64,
        /// `O_ENTRY_D` as written into the row.
        entry: u64,
    },
    /// No durably auditable key (read-only or non-order transaction).
    None,
}

/// Outcome of one executed transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnOutcome {
    /// Which profile ran.
    pub kind: TxnKind,
    /// Whether it committed (`false` = the 1 % deliberate rollback).
    pub committed: bool,
    /// Audit record for lost-transaction analysis.
    pub audit: Audit,
}

/// Result of running one statement of an in-flight transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtResult {
    /// The statement completed; more statements remain.
    Continue,
    /// The transaction finished (committed, or the spec's deliberate
    /// rollback); the session has no open transaction any more.
    Done(TxnOutcome),
}

// NURand C constants (fixed per run, as the spec's C-Load).
const C_CUSTOMER: u64 = 123;
const C_ITEM: u64 = 777;
const C_LASTNAME: u64 = 173;

fn col_u64(row: &Row, col: usize) -> DbResult<u64> {
    row.get(col).and_then(Value::as_u64).ok_or_else(|| DbError::NotFound(format!("u64 col {col}")))
}

fn col_i64(row: &Row, col: usize) -> DbResult<i64> {
    row.get(col).and_then(Value::as_i64).ok_or_else(|| DbError::NotFound(format!("i64 col {col}")))
}

fn one_rid(rid: Option<RowId>, what: &str) -> DbResult<RowId> {
    rid.ok_or_else(|| DbError::NotFound(what.to_string()))
}

/// One transaction in flight on a session: pre-drawn inputs plus the
/// current statement position. Created when a terminal submits, stepped
/// until [`StmtResult::Done`], parked across lock waits, and restarted
/// from scratch after a deadlock abort.
#[derive(Debug, Clone)]
pub struct InFlight {
    profile: Profile,
}

#[derive(Debug, Clone)]
enum Profile {
    NewOrder(NewOrderTxn),
    Payment(PaymentTxn),
    OrderStatus(OrderStatusTxn),
    Delivery(DeliveryTxn),
    StockLevel(StockLevelTxn),
}

impl InFlight {
    /// Draws a transaction of `kind` from `rng`. All random inputs are
    /// fixed here: stepping, blocking, and restarting never touch the RNG,
    /// so the driver's random stream is independent of lock timing.
    pub fn new(schema: &TpccSchema, rng: &mut SimRng, kind: TxnKind, now_micros: u64) -> InFlight {
        let profile = match kind {
            TxnKind::NewOrder => Profile::NewOrder(NewOrderTxn::draw(schema, rng, now_micros)),
            TxnKind::Payment => Profile::Payment(PaymentTxn::draw(schema, rng)),
            TxnKind::OrderStatus => Profile::OrderStatus(OrderStatusTxn::draw(schema, rng)),
            TxnKind::Delivery => Profile::Delivery(DeliveryTxn::draw(schema, rng, now_micros)),
            TxnKind::StockLevel => Profile::StockLevel(StockLevelTxn::draw(schema, rng)),
        };
        InFlight { profile }
    }

    /// The profile class of this transaction.
    pub fn kind(&self) -> TxnKind {
        match self.profile {
            Profile::NewOrder(_) => TxnKind::NewOrder,
            Profile::Payment(_) => TxnKind::Payment,
            Profile::OrderStatus(_) => TxnKind::OrderStatus,
            Profile::Delivery(_) => TxnKind::Delivery,
            Profile::StockLevel(_) => TxnKind::StockLevel,
        }
    }

    /// Runs the next statement on `session`.
    ///
    /// # Errors
    ///
    /// [`DbError::LockWait`] — nothing happened; re-issue this statement
    /// after the lock grant. [`DbError::Deadlock`] — this transaction is
    /// the victim; roll the session back, call [`InFlight::restart`], and
    /// resubmit. Anything else is a real failure: roll back and discard.
    pub fn step(
        &mut self,
        server: &mut DbServer,
        session: SessionId,
        schema: &TpccSchema,
    ) -> DbResult<StmtResult> {
        match &mut self.profile {
            Profile::NewOrder(t) => t.step(server, session, schema),
            Profile::Payment(t) => t.step(server, session, schema),
            Profile::OrderStatus(t) => t.step(server, session, schema),
            Profile::Delivery(t) => t.step(server, session, schema),
            Profile::StockLevel(t) => t.step(server, session, schema),
        }
    }

    /// Rewinds to the first statement, keeping the drawn inputs. Used
    /// after a deadlock abort (the engine rolled nothing forward for this
    /// transaction, so replaying the same inputs is exactly a retry).
    pub fn restart(&mut self) {
        match &mut self.profile {
            Profile::NewOrder(t) => {
                t.phase = NewOrderPhase::District;
                t.o_id = 0;
                t.lines.clear();
            }
            Profile::Payment(t) => {
                t.phase = PaymentPhase::Warehouse;
                t.resolved_c = 0;
            }
            Profile::OrderStatus(t) => t.phase = OrderStatusPhase::Customer,
            Profile::Delivery(t) => {
                t.phase = DeliveryPhase::Claim;
                t.d = 1;
                t.o_id = 0;
                t.c_id = 0;
                t.total = 0;
            }
            Profile::StockLevel(t) => {
                t.phase = StockLevelPhase::District;
                t.next_o = 0;
            }
        }
    }
}

// ---------------------------------------------------------------- NewOrder

#[derive(Debug, Clone)]
struct NewOrderTxn {
    w: u64,
    d: u64,
    c: u64,
    /// Pre-drawn `(item id, supplying warehouse, quantity)` per line. The
    /// deliberate-rollback path is encoded as an unused item id in the
    /// last slot, as the spec prescribes.
    items: Vec<(u64, u64, u64)>,
    entry: u64,
    phase: NewOrderPhase,
    o_id: u64,
    lines: Vec<Row>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NewOrderPhase {
    District,
    OrderInsert,
    NewOrderInsert,
    Stock(usize),
    Lines,
    Commit,
}

impl NewOrderTxn {
    fn draw(schema: &TpccSchema, rng: &mut SimRng, now_micros: u64) -> NewOrderTxn {
        let scale = schema.scale;
        let w = rng.gen_range(1..=scale.warehouses);
        let d = rng.gen_range(1..=scale.districts_per_warehouse);
        let c = nurand(rng, 1023, C_CUSTOMER, 1, scale.customers_per_district);
        let ol_cnt = rng.gen_range(5..=15u64);
        let deliberate_rollback = rng.gen_bool(0.01);
        let items: Vec<(u64, u64, u64)> = (0..ol_cnt)
            .map(|idx| {
                let mut i_id = nurand(rng, 8191, C_ITEM, 1, scale.items);
                if deliberate_rollback && idx == ol_cnt - 1 {
                    i_id = scale.items + 1; // unused item number → rollback
                }
                let supply_w = if scale.warehouses > 1 && rng.gen_bool(0.01) {
                    let mut s = rng.gen_range(1..=scale.warehouses);
                    if s == w {
                        s = s % scale.warehouses + 1;
                    }
                    s
                } else {
                    w
                };
                (i_id, supply_w, rng.gen_range(1..=10u64))
            })
            .collect();
        NewOrderTxn {
            w,
            d,
            c,
            items,
            entry: now_micros,
            phase: NewOrderPhase::District,
            o_id: 0,
            lines: Vec::new(),
        }
    }

    fn step(
        &mut self,
        srv: &mut DbServer,
        s: SessionId,
        schema: &TpccSchema,
    ) -> DbResult<StmtResult> {
        let (w, d) = (self.w, self.d);
        match self.phase {
            NewOrderPhase::District => {
                // Warehouse tax read, then the order-id allocation: the
                // district row is the statement's one contended lock.
                let w_rid =
                    one_rid(srv.lookup_first(schema.warehouse, ix::PK, &[Value::U64(w)])?, "warehouse")?;
                let _wrow = srv.get_row(schema.warehouse, w_rid)?;
                let d_rid = one_rid(
                    srv.lookup_first(schema.district, ix::PK, &[Value::U64(w), Value::U64(d)])?,
                    "district",
                )?;
                let mut drow = srv.get_row(schema.district, d_rid)?;
                let o_id = col_u64(&drow, schema::district::D_NEXT_O_ID)?;
                drow.set(schema::district::D_NEXT_O_ID, Value::U64(o_id + 1));
                srv.update(s, schema.district, d_rid, drow)?;
                self.o_id = o_id;
                self.phase = NewOrderPhase::OrderInsert;
                Ok(StmtResult::Continue)
            }
            NewOrderPhase::OrderInsert => {
                let c_rid = one_rid(
                    srv.lookup_first(
                        schema.customer,
                        ix::PK,
                        &[Value::U64(w), Value::U64(d), Value::U64(self.c)],
                    )?,
                    "customer",
                )?;
                let _crow = srv.get_row(schema.customer, c_rid)?;
                srv.insert(
                    s,
                    schema.orders,
                    Row::new(vec![
                        Value::U64(w),
                        Value::U64(d),
                        Value::U64(self.o_id),
                        Value::U64(self.c),
                        Value::U64(self.entry),
                        Value::U64(0),
                        Value::U64(self.items.len() as u64),
                    ]),
                )?;
                self.phase = NewOrderPhase::NewOrderInsert;
                Ok(StmtResult::Continue)
            }
            NewOrderPhase::NewOrderInsert => {
                // Its own statement: the NEW_ORDER slot may have been
                // freed by an uncommitted Delivery, so this insert can
                // block where the ORDERS insert cannot.
                srv.insert(
                    s,
                    schema.new_order,
                    Row::new(vec![Value::U64(w), Value::U64(d), Value::U64(self.o_id)]),
                )?;
                self.phase = NewOrderPhase::Stock(0);
                Ok(StmtResult::Continue)
            }
            NewOrderPhase::Stock(i) => {
                let (i_id, supply_w, qty) = self.items[i];
                let Some(item_rid) = srv.lookup_first(schema.item, ix::PK, &[Value::U64(i_id)])?
                else {
                    // Unused item number: the spec's deliberate rollback.
                    srv.rollback(s)?;
                    return Ok(StmtResult::Done(TxnOutcome {
                        kind: TxnKind::NewOrder,
                        committed: false,
                        audit: Audit::None,
                    }));
                };
                let irow = srv.get_row(schema.item, item_rid)?;
                let price = col_i64(&irow, schema::item::I_PRICE)?;
                let s_rid = one_rid(
                    srv.lookup_first(schema.stock, ix::PK, &[Value::U64(supply_w), Value::U64(i_id)])?,
                    "stock",
                )?;
                let mut srow = srv.get_row(schema.stock, s_rid)?;
                let mut quantity = col_i64(&srow, schema::stock::S_QUANTITY)?;
                quantity = if quantity >= qty as i64 + 10 {
                    quantity - qty as i64
                } else {
                    quantity - qty as i64 + 91
                };
                srow.set(schema::stock::S_QUANTITY, Value::I64(quantity));
                srow.set(schema::stock::S_YTD, Value::U64(col_u64(&srow, schema::stock::S_YTD)? + qty));
                srow.set(
                    schema::stock::S_ORDER_CNT,
                    Value::U64(col_u64(&srow, schema::stock::S_ORDER_CNT)? + 1),
                );
                if supply_w != w {
                    srow.set(
                        schema::stock::S_REMOTE_CNT,
                        Value::U64(col_u64(&srow, schema::stock::S_REMOTE_CNT)? + 1),
                    );
                }
                srv.update(s, schema.stock, s_rid, srow)?;
                // Only after the update stuck: a LockWait above must not
                // leave a phantom line behind.
                self.lines.push(Row::new(vec![
                    Value::U64(w),
                    Value::U64(d),
                    Value::U64(self.o_id),
                    Value::U64(i as u64 + 1),
                    Value::U64(i_id),
                    Value::U64(supply_w),
                    Value::U64(qty),
                    Value::I64(price * qty as i64),
                    Value::U64(0),
                ]));
                self.phase = if i + 1 < self.items.len() {
                    NewOrderPhase::Stock(i + 1)
                } else {
                    NewOrderPhase::Lines
                };
                Ok(StmtResult::Continue)
            }
            NewOrderPhase::Lines => {
                srv.insert_batch(s, schema.order_line, self.lines.clone())?;
                self.phase = NewOrderPhase::Commit;
                Ok(StmtResult::Continue)
            }
            NewOrderPhase::Commit => {
                srv.commit(s)?;
                Ok(StmtResult::Done(TxnOutcome {
                    kind: TxnKind::NewOrder,
                    committed: true,
                    audit: Audit::Order { w, d, o: self.o_id, entry: self.entry },
                }))
            }
        }
    }
}

// ----------------------------------------------------------------- Payment

#[derive(Debug, Clone)]
struct PaymentTxn {
    w: u64,
    d: u64,
    c_w: u64,
    c_d: u64,
    by_last_name: bool,
    c_last: String,
    c_id: u64,
    amount: i64,
    phase: PaymentPhase,
    /// The customer id actually charged (differs from `c_id` when the
    /// last-name path resolved to the median match).
    resolved_c: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PaymentPhase {
    Warehouse,
    District,
    Customer,
    History,
    Commit,
}

impl PaymentTxn {
    fn draw(schema: &TpccSchema, rng: &mut SimRng) -> PaymentTxn {
        let scale = schema.scale;
        let w = rng.gen_range(1..=scale.warehouses);
        let d = rng.gen_range(1..=scale.districts_per_warehouse);
        // 15 % of payments are for a customer of another district/warehouse.
        let (c_w, c_d) = if rng.gen_bool(0.15) {
            if scale.warehouses > 1 {
                let mut ow = rng.gen_range(1..=scale.warehouses);
                if ow == w {
                    ow = ow % scale.warehouses + 1;
                }
                (ow, rng.gen_range(1..=scale.districts_per_warehouse))
            } else {
                (w, rng.gen_range(1..=scale.districts_per_warehouse))
            }
        } else {
            (w, d)
        };
        let by_last_name = rng.gen_bool(0.60);
        let c_last = last_name(nurand(rng, 255, C_LASTNAME, 0, 999));
        let c_id = nurand(rng, 1023, C_CUSTOMER, 1, scale.customers_per_district);
        let amount = rng.gen_range(100..=500_000i64);
        PaymentTxn {
            w,
            d,
            c_w,
            c_d,
            by_last_name,
            c_last,
            c_id,
            amount,
            phase: PaymentPhase::Warehouse,
            resolved_c: 0,
        }
    }

    fn locate_customer(&self, srv: &mut DbServer, schema: &TpccSchema) -> DbResult<RowId> {
        if self.by_last_name {
            let matches = srv.prefix_scan(
                schema.customer,
                ix::CUSTOMER_BY_LAST,
                &[Value::U64(self.c_w), Value::U64(self.c_d), Value::Str(self.c_last.clone().into())],
            )?;
            if !matches.is_empty() {
                return Ok(matches[matches.len() / 2]);
            }
        }
        one_rid(
            srv.lookup_first(
                schema.customer,
                ix::PK,
                &[Value::U64(self.c_w), Value::U64(self.c_d), Value::U64(self.c_id)],
            )?,
            "customer",
        )
    }

    fn step(
        &mut self,
        srv: &mut DbServer,
        s: SessionId,
        schema: &TpccSchema,
    ) -> DbResult<StmtResult> {
        match self.phase {
            PaymentPhase::Warehouse => {
                let w_rid = one_rid(
                    srv.lookup_first(schema.warehouse, ix::PK, &[Value::U64(self.w)])?,
                    "warehouse",
                )?;
                let mut wrow = srv.get_row(schema.warehouse, w_rid)?;
                wrow.set(
                    schema::warehouse::W_YTD,
                    Value::I64(col_i64(&wrow, schema::warehouse::W_YTD)? + self.amount),
                );
                srv.update(s, schema.warehouse, w_rid, wrow)?;
                self.phase = PaymentPhase::District;
                Ok(StmtResult::Continue)
            }
            PaymentPhase::District => {
                let d_rid = one_rid(
                    srv.lookup_first(schema.district, ix::PK, &[Value::U64(self.w), Value::U64(self.d)])?,
                    "district",
                )?;
                let mut drow = srv.get_row(schema.district, d_rid)?;
                drow.set(
                    schema::district::D_YTD,
                    Value::I64(col_i64(&drow, schema::district::D_YTD)? + self.amount),
                );
                srv.update(s, schema.district, d_rid, drow)?;
                self.phase = PaymentPhase::Customer;
                Ok(StmtResult::Continue)
            }
            PaymentPhase::Customer => {
                let c_rid = self.locate_customer(srv, schema)?;
                let mut crow = srv.get_row(schema.customer, c_rid)?;
                let real_c = col_u64(&crow, schema::customer::C_ID)?;
                crow.set(
                    schema::customer::C_BALANCE,
                    Value::I64(col_i64(&crow, schema::customer::C_BALANCE)? - self.amount),
                );
                crow.set(
                    schema::customer::C_YTD_PAYMENT,
                    Value::I64(col_i64(&crow, schema::customer::C_YTD_PAYMENT)? + self.amount),
                );
                crow.set(
                    schema::customer::C_PAYMENT_CNT,
                    Value::U64(col_u64(&crow, schema::customer::C_PAYMENT_CNT)? + 1),
                );
                srv.update(s, schema.customer, c_rid, crow)?;
                self.resolved_c = real_c;
                self.phase = PaymentPhase::History;
                Ok(StmtResult::Continue)
            }
            PaymentPhase::History => {
                srv.insert(
                    s,
                    schema.history,
                    Row::new(vec![
                        Value::U64(self.c_w),
                        Value::U64(self.c_d),
                        Value::U64(self.resolved_c),
                        Value::I64(self.amount),
                        Value::Str(format!("payment at w{} d{}", self.w, self.d).into()),
                    ]),
                )?;
                self.phase = PaymentPhase::Commit;
                Ok(StmtResult::Continue)
            }
            PaymentPhase::Commit => {
                srv.commit(s)?;
                Ok(StmtResult::Done(TxnOutcome {
                    kind: TxnKind::Payment,
                    committed: true,
                    audit: Audit::None,
                }))
            }
        }
    }
}

// ------------------------------------------------------------- OrderStatus

#[derive(Debug, Clone)]
struct OrderStatusTxn {
    w: u64,
    d: u64,
    by_last_name: bool,
    c_last: String,
    c_id: u64,
    phase: OrderStatusPhase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OrderStatusPhase {
    Customer,
    Orders,
}

impl OrderStatusTxn {
    fn draw(schema: &TpccSchema, rng: &mut SimRng) -> OrderStatusTxn {
        let scale = schema.scale;
        OrderStatusTxn {
            w: rng.gen_range(1..=scale.warehouses),
            d: rng.gen_range(1..=scale.districts_per_warehouse),
            by_last_name: rng.gen_bool(0.60),
            c_last: last_name(nurand(rng, 255, C_LASTNAME, 0, 999)),
            c_id: nurand(rng, 1023, C_CUSTOMER, 1, scale.customers_per_district),
            phase: OrderStatusPhase::Customer,
        }
    }

    fn step(
        &mut self,
        srv: &mut DbServer,
        s: SessionId,
        schema: &TpccSchema,
    ) -> DbResult<StmtResult> {
        match self.phase {
            OrderStatusPhase::Customer => {
                let c_rid = if self.by_last_name {
                    let matches = srv.prefix_scan(
                        schema.customer,
                        ix::CUSTOMER_BY_LAST,
                        &[Value::U64(self.w), Value::U64(self.d), Value::Str(self.c_last.clone().into())],
                    )?;
                    match matches.get(matches.len() / 2) {
                        Some(r) => *r,
                        None => one_rid(
                            srv.lookup_first(
                                schema.customer,
                                ix::PK,
                                &[Value::U64(self.w), Value::U64(self.d), Value::U64(self.c_id)],
                            )?,
                            "customer",
                        )?,
                    }
                } else {
                    one_rid(
                        srv.lookup_first(
                            schema.customer,
                            ix::PK,
                            &[Value::U64(self.w), Value::U64(self.d), Value::U64(self.c_id)],
                        )?,
                        "customer",
                    )?
                };
                let crow = srv.get_row(schema.customer, c_rid)?;
                self.c_id = col_u64(&crow, schema::customer::C_ID)?;
                self.phase = OrderStatusPhase::Orders;
                Ok(StmtResult::Continue)
            }
            OrderStatusPhase::Orders => {
                // The customer's most recent order, if any.
                let last = srv.last_under_prefix(
                    schema.orders,
                    ix::ORDERS_BY_CUSTOMER,
                    &[Value::U64(self.w), Value::U64(self.d), Value::U64(self.c_id)],
                )?;
                if let Some(o_rid) = last.first() {
                    let orow = srv.get_row(schema.orders, *o_rid)?;
                    let o_id = col_u64(&orow, schema::orders::O_ID)?;
                    let _lines = srv.read_rows_prefix(
                        schema.order_line,
                        ix::PK,
                        &[Value::U64(self.w), Value::U64(self.d), Value::U64(o_id)],
                    )?;
                }
                // Read-only: the commit is a no-op handshake.
                srv.commit(s)?;
                Ok(StmtResult::Done(TxnOutcome {
                    kind: TxnKind::OrderStatus,
                    committed: true,
                    audit: Audit::None,
                }))
            }
        }
    }
}

// ---------------------------------------------------------------- Delivery

#[derive(Debug, Clone)]
struct DeliveryTxn {
    w: u64,
    carrier: u64,
    now_micros: u64,
    districts: u64,
    phase: DeliveryPhase,
    /// District currently being delivered (1-based; advances past
    /// `districts` when done).
    d: u64,
    o_id: u64,
    c_id: u64,
    total: i64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeliveryPhase {
    Claim,
    Order,
    Lines,
    Customer,
    Commit,
}

impl DeliveryTxn {
    fn draw(schema: &TpccSchema, rng: &mut SimRng, now_micros: u64) -> DeliveryTxn {
        let scale = schema.scale;
        DeliveryTxn {
            w: rng.gen_range(1..=scale.warehouses),
            carrier: rng.gen_range(1..=10u64),
            now_micros,
            districts: scale.districts_per_warehouse,
            phase: DeliveryPhase::Claim,
            d: 1,
            o_id: 0,
            c_id: 0,
            total: 0,
        }
    }

    fn step(
        &mut self,
        srv: &mut DbServer,
        s: SessionId,
        schema: &TpccSchema,
    ) -> DbResult<StmtResult> {
        let w = self.w;
        match self.phase {
            DeliveryPhase::Claim => {
                // Walk districts until one has a pending order; deleting
                // its NEW_ORDER row claims it (and is the one lock that
                // serializes concurrent deliveries).
                loop {
                    if self.d > self.districts {
                        self.phase = DeliveryPhase::Commit;
                        return Ok(StmtResult::Continue);
                    }
                    let pending = srv.first_under_prefix(
                        schema.new_order,
                        ix::PK,
                        &[Value::U64(w), Value::U64(self.d)],
                    )?;
                    let Some(no_rid) = pending.first().copied() else {
                        self.d += 1;
                        continue;
                    };
                    let no_row = srv.get_row(schema.new_order, no_rid)?;
                    let o_id = col_u64(&no_row, schema::new_order::NO_O_ID)?;
                    srv.delete(s, schema.new_order, no_rid)?;
                    self.o_id = o_id;
                    self.phase = DeliveryPhase::Order;
                    return Ok(StmtResult::Continue);
                }
            }
            DeliveryPhase::Order => {
                let o_rid = one_rid(
                    srv.lookup_first(
                        schema.orders,
                        ix::PK,
                        &[Value::U64(w), Value::U64(self.d), Value::U64(self.o_id)],
                    )?,
                    "order",
                )?;
                let mut orow = srv.get_row(schema.orders, o_rid)?;
                self.c_id = col_u64(&orow, schema::orders::O_C_ID)?;
                orow.set(schema::orders::O_CARRIER_ID, Value::U64(self.carrier));
                srv.update(s, schema.orders, o_rid, orow)?;
                self.phase = DeliveryPhase::Lines;
                Ok(StmtResult::Continue)
            }
            DeliveryPhase::Lines => {
                // Claiming the NEW_ORDER row serialized deliveries of this
                // order, and nothing else updates a delivered order's
                // lines, so the per-line updates here cannot block.
                let lines = srv.read_rows_prefix(
                    schema.order_line,
                    ix::PK,
                    &[Value::U64(w), Value::U64(self.d), Value::U64(self.o_id)],
                )?;
                let mut total = 0i64;
                for (rid, mut lrow) in lines {
                    total += col_i64(&lrow, schema::order_line::OL_AMOUNT)?;
                    lrow.set(schema::order_line::OL_DELIVERY_D, Value::U64(self.now_micros));
                    srv.update(s, schema.order_line, rid, lrow)?;
                }
                self.total = total;
                self.phase = DeliveryPhase::Customer;
                Ok(StmtResult::Continue)
            }
            DeliveryPhase::Customer => {
                let c_rid = one_rid(
                    srv.lookup_first(
                        schema.customer,
                        ix::PK,
                        &[Value::U64(w), Value::U64(self.d), Value::U64(self.c_id)],
                    )?,
                    "customer",
                )?;
                let mut crow = srv.get_row(schema.customer, c_rid)?;
                crow.set(
                    schema::customer::C_BALANCE,
                    Value::I64(col_i64(&crow, schema::customer::C_BALANCE)? + self.total),
                );
                crow.set(
                    schema::customer::C_DELIVERY_CNT,
                    Value::U64(col_u64(&crow, schema::customer::C_DELIVERY_CNT)? + 1),
                );
                srv.update(s, schema.customer, c_rid, crow)?;
                self.d += 1;
                self.phase = DeliveryPhase::Claim;
                Ok(StmtResult::Continue)
            }
            DeliveryPhase::Commit => {
                srv.commit(s)?;
                Ok(StmtResult::Done(TxnOutcome {
                    kind: TxnKind::Delivery,
                    committed: true,
                    audit: Audit::None,
                }))
            }
        }
    }
}

// -------------------------------------------------------------- StockLevel

#[derive(Debug, Clone)]
struct StockLevelTxn {
    w: u64,
    d: u64,
    threshold: i64,
    phase: StockLevelPhase,
    next_o: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StockLevelPhase {
    District,
    Scan,
}

impl StockLevelTxn {
    fn draw(schema: &TpccSchema, rng: &mut SimRng) -> StockLevelTxn {
        let scale = schema.scale;
        StockLevelTxn {
            w: rng.gen_range(1..=scale.warehouses),
            d: rng.gen_range(1..=scale.districts_per_warehouse),
            threshold: rng.gen_range(10..=20i64),
            phase: StockLevelPhase::District,
            next_o: 0,
        }
    }

    fn step(
        &mut self,
        srv: &mut DbServer,
        s: SessionId,
        schema: &TpccSchema,
    ) -> DbResult<StmtResult> {
        match self.phase {
            StockLevelPhase::District => {
                let d_rid = one_rid(
                    srv.lookup_first(schema.district, ix::PK, &[Value::U64(self.w), Value::U64(self.d)])?,
                    "district",
                )?;
                let drow = srv.get_row(schema.district, d_rid)?;
                self.next_o = col_u64(&drow, schema::district::D_NEXT_O_ID)?;
                self.phase = StockLevelPhase::Scan;
                Ok(StmtResult::Continue)
            }
            StockLevelPhase::Scan => {
                let from = self.next_o.saturating_sub(20).max(1);
                // Collect-then-dedup beats a set here: the ~200 line items
                // carry few duplicates, and one sort is cheaper than
                // per-item tree nodes.
                let mut items = Vec::with_capacity(256);
                for o in from..self.next_o {
                    let lines = srv.read_rows_prefix(
                        schema.order_line,
                        ix::PK,
                        &[Value::U64(self.w), Value::U64(self.d), Value::U64(o)],
                    )?;
                    for (_, lrow) in lines {
                        items.push(col_u64(&lrow, schema::order_line::OL_I_ID)?);
                    }
                }
                items.sort_unstable();
                items.dedup();
                // Stock rows load in item order, so the sorted item list
                // resolves to mostly-sequential rids and one batched read
                // covers them.
                let mut s_rids = Vec::with_capacity(items.len());
                for i_id in &items {
                    s_rids.push(one_rid(
                        srv.lookup_first(schema.stock, ix::PK, &[Value::U64(self.w), Value::U64(*i_id)])?,
                        "stock",
                    )?);
                }
                let mut low = 0u64;
                for srow in srv.read_rows(&s_rids)? {
                    if col_i64(&srow, schema::stock::S_QUANTITY)? < self.threshold {
                        low += 1;
                    }
                }
                let _ = low;
                srv.commit(s)?;
                Ok(StmtResult::Done(TxnOutcome {
                    kind: TxnKind::StockLevel,
                    committed: true,
                    audit: Audit::None,
                }))
            }
        }
    }
}

// -------------------------------------------------- one-shot conveniences

/// Runs one transaction of `kind` to completion on a throwaway session.
///
/// With a single session there is no lock contention, so this never sees
/// `LockWait` or `Deadlock`; it is the serial path used by unit tests and
/// single-terminal drivers.
///
/// # Errors
///
/// Propagates storage errors after rolling the transaction back.
pub fn execute(
    server: &mut DbServer,
    schema: &TpccSchema,
    rng: &mut SimRng,
    kind: TxnKind,
) -> DbResult<TxnOutcome> {
    let session = server.connect()?;
    let now = server.clock().now().as_micros();
    let mut txn = InFlight::new(schema, rng, kind, now);
    let result = loop {
        match txn.step(server, session, schema) {
            Ok(StmtResult::Continue) => {}
            Ok(StmtResult::Done(out)) => break Ok(out),
            Err(e) => {
                let _ = server.rollback(session);
                break Err(e);
            }
        }
    };
    server.disconnect(session);
    result
}

/// Executes one New-Order transaction (clause 2.4).
///
/// # Errors
///
/// Propagates storage errors after rolling the transaction back.
pub fn new_order(server: &mut DbServer, schema: &TpccSchema, rng: &mut SimRng) -> DbResult<TxnOutcome> {
    execute(server, schema, rng, TxnKind::NewOrder)
}

/// Executes one Payment transaction (clause 2.5).
///
/// # Errors
///
/// Propagates storage errors after rolling the transaction back.
pub fn payment(server: &mut DbServer, schema: &TpccSchema, rng: &mut SimRng) -> DbResult<TxnOutcome> {
    execute(server, schema, rng, TxnKind::Payment)
}

/// Executes one Order-Status transaction (clause 2.6, read-only).
///
/// # Errors
///
/// Propagates storage errors after rolling the transaction back.
pub fn order_status(
    server: &mut DbServer,
    schema: &TpccSchema,
    rng: &mut SimRng,
) -> DbResult<TxnOutcome> {
    execute(server, schema, rng, TxnKind::OrderStatus)
}

/// Executes one Delivery transaction (clause 2.7): delivers the oldest
/// undelivered order of every district of one warehouse.
///
/// # Errors
///
/// Propagates storage errors after rolling the transaction back.
pub fn delivery(server: &mut DbServer, schema: &TpccSchema, rng: &mut SimRng) -> DbResult<TxnOutcome> {
    execute(server, schema, rng, TxnKind::Delivery)
}

/// Executes one Stock-Level transaction (clause 2.8, read-only).
///
/// # Errors
///
/// Propagates storage errors after rolling the transaction back.
pub fn stock_level(
    server: &mut DbServer,
    schema: &TpccSchema,
    rng: &mut SimRng,
) -> DbResult<TxnOutcome> {
    execute(server, schema, rng, TxnKind::StockLevel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::load_database;
    use crate::schema::{create_schema, TpccScale};
    use recobench_engine::{DiskLayout, InstanceConfig};
    use recobench_sim::SimClock;

    fn loaded() -> (DbServer, TpccSchema, SimRng) {
        let mut srv = DbServer::on_fresh_disks(
            "TX",
            SimClock::shared(),
            DiskLayout::four_disk(),
            InstanceConfig::default(),
        );
        srv.create_database().unwrap();
        let schema = create_schema(&mut srv, TpccScale::tiny(), 4, 2_048).unwrap();
        let mut rng = SimRng::seed_from(11);
        load_database(&mut srv, &schema, &mut rng).unwrap();
        (srv, schema, rng.fork(99))
    }

    #[test]
    fn new_order_commits_and_creates_rows() {
        let (mut srv, schema, mut rng) = loaded();
        let before = srv.peek_scan(schema.orders).unwrap().len();
        let mut committed = 0;
        for _ in 0..20 {
            let out = new_order(&mut srv, &schema, &mut rng).unwrap();
            if out.committed {
                committed += 1;
                assert!(matches!(out.audit, Audit::Order { .. }));
            }
        }
        assert!(committed >= 15, "most new-orders commit");
        let after = srv.peek_scan(schema.orders).unwrap().len();
        assert_eq!(after - before, committed);
        assert_eq!(srv.peek_scan(schema.new_order).unwrap().len(), committed);
    }

    #[test]
    fn payment_moves_money_consistently() {
        let (mut srv, schema, mut rng) = loaded();
        for _ in 0..20 {
            payment(&mut srv, &schema, &mut rng).unwrap();
        }
        // W_YTD still equals the sum of its districts' D_YTD.
        let report = crate::consistency::check_consistency(&srv, &schema).unwrap();
        assert!(report.is_consistent(), "violations: {:?}", report.violations);
        assert_eq!(srv.peek_scan(schema.history).unwrap().len(), 20);
    }

    #[test]
    fn delivery_clears_new_orders() {
        let (mut srv, schema, mut rng) = loaded();
        for _ in 0..30 {
            new_order(&mut srv, &schema, &mut rng).unwrap();
        }
        let pending_before = srv.peek_scan(schema.new_order).unwrap().len();
        assert!(pending_before > 0);
        for _ in 0..40 {
            delivery(&mut srv, &schema, &mut rng).unwrap();
        }
        let pending_after = srv.peek_scan(schema.new_order).unwrap().len();
        assert_eq!(pending_after, 0, "all pending orders delivered");
    }

    #[test]
    fn read_only_profiles_change_nothing() {
        let (mut srv, schema, mut rng) = loaded();
        for _ in 0..10 {
            new_order(&mut srv, &schema, &mut rng).unwrap();
        }
        let orders = srv.peek_scan(schema.orders).unwrap();
        let stock = srv.peek_scan(schema.stock).unwrap();
        for _ in 0..10 {
            order_status(&mut srv, &schema, &mut rng).unwrap();
            stock_level(&mut srv, &schema, &mut rng).unwrap();
        }
        assert_eq!(srv.peek_scan(schema.orders).unwrap(), orders);
        assert_eq!(srv.peek_scan(schema.stock).unwrap(), stock);
    }

    #[test]
    fn mix_draw_is_weighted() {
        let mut rng = SimRng::seed_from(5);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(TxnKind::draw(&mut rng)).or_insert(0u32) += 1;
        }
        let no = counts[&TxnKind::NewOrder] as f64 / 10_000.0;
        let pay = counts[&TxnKind::Payment] as f64 / 10_000.0;
        assert!((0.42..0.48).contains(&no), "new-order fraction {no}");
        assert!((0.40..0.46).contains(&pay), "payment fraction {pay}");
    }

    #[test]
    fn consistency_holds_after_a_mixed_burst() {
        let (mut srv, schema, mut rng) = loaded();
        for _ in 0..150 {
            let kind = TxnKind::draw(&mut rng);
            execute(&mut srv, &schema, &mut rng, kind).unwrap();
        }
        let report = crate::consistency::check_consistency(&srv, &schema).unwrap();
        assert!(report.is_consistent(), "violations: {:?}", report.violations);
    }

    #[test]
    fn two_sessions_interleave_statement_by_statement() {
        let (mut srv, schema, mut rng) = loaded();
        let now = srv.clock().now().as_micros();
        let s1 = srv.connect().unwrap();
        let s2 = srv.connect().unwrap();
        let mut a = InFlight::new(&schema, &mut rng, TxnKind::NewOrder, now);
        let mut b = InFlight::new(&schema, &mut rng, TxnKind::Payment, now);
        let mut done = [false, false];
        let mut blocked = [false, false];
        let mut waits = 0;
        // Round-robin the two transactions one statement at a time. With
        // tiny scale they may contend (district row); a wait just parks
        // one side until the other finishes.
        for _ in 0..200 {
            if done == [true, true] {
                break;
            }
            for side in 0..2 {
                if blocked[side] || done[side] {
                    continue;
                }
                let (txn, sid) = if side == 0 { (&mut a, s1) } else { (&mut b, s2) };
                match txn.step(&mut srv, sid, &schema) {
                    Ok(StmtResult::Continue) => {}
                    Ok(StmtResult::Done(out)) => {
                        assert!(out.committed);
                        done[side] = true;
                        // A commit may unblock the other side.
                        for (gs, _) in srv.take_lock_grants() {
                            if gs == s1 {
                                blocked[0] = false;
                            }
                            if gs == s2 {
                                blocked[1] = false;
                            }
                        }
                    }
                    Err(DbError::LockWait { .. }) => {
                        blocked[side] = true;
                        waits += 1;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
        assert_eq!(done, [true, true], "both interleaved transactions completed (waits={waits})");
        srv.disconnect(s1);
        srv.disconnect(s2);
        let report = crate::consistency::check_consistency(&srv, &schema).unwrap();
        assert!(report.is_consistent(), "violations: {:?}", report.violations);
    }
}
