//! The five TPC-C transaction profiles.
//!
//! Each profile generates its own inputs (clause 2 of the specification,
//! with ranges adapted to the configured scale), runs against the engine,
//! and either commits or rolls back. Any storage error triggers a
//! best-effort rollback and propagates to the driver, which treats it the
//! way a real terminal treats an ORA- error.

use recobench_engine::row::{Row, Value};
use recobench_engine::{DbError, DbResult, DbServer, RowId, TxnId};
use recobench_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::gen::{last_name, nurand};
use crate::schema::{self, ix, TpccSchema};

/// The transaction mix classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxnKind {
    /// New-Order (45 % of the mix; the tpmC-counted class).
    NewOrder,
    /// Payment (43 %).
    Payment,
    /// Order-Status (4 %, read-only).
    OrderStatus,
    /// Delivery (4 %).
    Delivery,
    /// Stock-Level (4 %, read-only).
    StockLevel,
}

impl TxnKind {
    /// Draws a kind with the standard 45/43/4/4/4 weights.
    pub fn draw(rng: &mut SimRng) -> TxnKind {
        let p = rng.gen_range(0..100u32);
        match p {
            0..=44 => TxnKind::NewOrder,
            45..=87 => TxnKind::Payment,
            88..=91 => TxnKind::OrderStatus,
            92..=95 => TxnKind::Delivery,
            _ => TxnKind::StockLevel,
        }
    }
}

/// What a committed transaction left behind, for the driver's audit log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Audit {
    /// A New-Order commit created order `(w, d, o)` with the given entry
    /// timestamp (which disambiguates an order id reused after incomplete
    /// recovery rolled the id allocator back).
    Order {
        /// Warehouse.
        w: u64,
        /// District.
        d: u64,
        /// Order id.
        o: u64,
        /// `O_ENTRY_D` as written into the row.
        entry: u64,
    },
    /// No durably auditable key (read-only or non-order transaction).
    None,
}

/// Outcome of one executed transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnOutcome {
    /// Which profile ran.
    pub kind: TxnKind,
    /// Whether it committed (`false` = the 1 % deliberate rollback).
    pub committed: bool,
    /// Audit record for lost-transaction analysis.
    pub audit: Audit,
}

// NURand C constants (fixed per run, as the spec's C-Load).
const C_CUSTOMER: u64 = 123;
const C_ITEM: u64 = 777;
const C_LASTNAME: u64 = 173;

fn col_u64(row: &Row, col: usize) -> DbResult<u64> {
    row.get(col).and_then(Value::as_u64).ok_or_else(|| DbError::NotFound(format!("u64 col {col}")))
}

fn col_i64(row: &Row, col: usize) -> DbResult<i64> {
    row.get(col).and_then(Value::as_i64).ok_or_else(|| DbError::NotFound(format!("i64 col {col}")))
}

fn one_rid(rid: Option<RowId>, what: &str) -> DbResult<RowId> {
    rid.ok_or_else(|| DbError::NotFound(what.to_string()))
}

fn with_txn<F>(server: &mut DbServer, body: F) -> DbResult<(TxnId, bool)>
where
    F: FnOnce(&mut DbServer, TxnId) -> DbResult<bool>,
{
    let txn = server.begin()?;
    match body(server, txn) {
        Ok(commit) => {
            if commit {
                server.commit(txn)?;
            } else {
                server.rollback(txn)?;
            }
            Ok((txn, commit))
        }
        Err(e) => {
            let _ = server.rollback(txn);
            Err(e)
        }
    }
}

/// Executes one New-Order transaction (clause 2.4).
///
/// # Errors
///
/// Propagates storage errors after rolling the transaction back.
pub fn new_order(server: &mut DbServer, schema: &TpccSchema, rng: &mut SimRng) -> DbResult<TxnOutcome> {
    let scale = schema.scale;
    let w = rng.gen_range(1..=scale.warehouses);
    let d = rng.gen_range(1..=scale.districts_per_warehouse);
    let c = nurand(rng, 1023, C_CUSTOMER, 1, scale.customers_per_district);
    let ol_cnt = rng.gen_range(5..=15u64);
    let deliberate_rollback = rng.gen_bool(0.01);
    let now_micros = server.clock().now().as_micros();
    // Pre-draw the items so the RNG stream is independent of data layout.
    let items: Vec<(u64, u64, u64)> = (0..ol_cnt)
        .map(|idx| {
            let mut i_id = nurand(rng, 8191, C_ITEM, 1, scale.items);
            if deliberate_rollback && idx == ol_cnt - 1 {
                i_id = scale.items + 1; // unused item number → rollback
            }
            let supply_w = if scale.warehouses > 1 && rng.gen_bool(0.01) {
                let mut s = rng.gen_range(1..=scale.warehouses);
                if s == w {
                    s = s % scale.warehouses + 1;
                }
                s
            } else {
                w
            };
            (i_id, supply_w, rng.gen_range(1..=10u64))
        })
        .collect();

    let mut o_id_out = 0u64;
    let (_txn, committed) = with_txn(server, |srv, txn| {
        // Warehouse (tax read).
        let w_rid = one_rid(srv.lookup_first(schema.warehouse, ix::PK, &[Value::U64(w)])?, "warehouse")?;
        let _wrow = srv.get_row(schema.warehouse, w_rid)?;
        // District: allocate the order id.
        let d_rid = one_rid(
            srv.lookup_first(schema.district, ix::PK, &[Value::U64(w), Value::U64(d)])?,
            "district",
        )?;
        let mut drow = srv.get_row(schema.district, d_rid)?;
        let o_id = col_u64(&drow, schema::district::D_NEXT_O_ID)?;
        drow.set(schema::district::D_NEXT_O_ID, Value::U64(o_id + 1));
        srv.update(txn, schema.district, d_rid, drow)?;
        // Customer read.
        let c_rid = one_rid(
            srv.lookup_first(schema.customer, ix::PK, &[Value::U64(w), Value::U64(d), Value::U64(c)])?,
            "customer",
        )?;
        let _crow = srv.get_row(schema.customer, c_rid)?;
        // ORDERS and NEW_ORDER rows.
        srv.insert(
            txn,
            schema.orders,
            Row::new(vec![
                Value::U64(w),
                Value::U64(d),
                Value::U64(o_id),
                Value::U64(c),
                Value::U64(now_micros),
                Value::U64(0),
                Value::U64(ol_cnt),
            ]),
        )?;
        srv.insert(
            txn,
            schema.new_order,
            Row::new(vec![Value::U64(w), Value::U64(d), Value::U64(o_id)]),
        )?;
        // Order lines: the stock pass collects the rows, then one batched
        // insert writes them (same per-row redo records, per-call overhead
        // paid once).
        let mut lines = Vec::with_capacity(items.len());
        for (number, (i_id, supply_w, qty)) in items.iter().enumerate() {
            let Some(item_rid) = srv.lookup_first(schema.item, ix::PK, &[Value::U64(*i_id)])? else {
                // Unused item number: the spec's deliberate rollback path.
                return Ok(false);
            };
            let irow = srv.get_row(schema.item, item_rid)?;
            let price = col_i64(&irow, schema::item::I_PRICE)?;
            let s_rid = one_rid(
                srv.lookup_first(schema.stock, ix::PK, &[Value::U64(*supply_w), Value::U64(*i_id)])?,
                "stock",
            )?;
            let mut srow = srv.get_row(schema.stock, s_rid)?;
            let mut quantity = col_i64(&srow, schema::stock::S_QUANTITY)?;
            quantity = if quantity >= *qty as i64 + 10 {
                quantity - *qty as i64
            } else {
                quantity - *qty as i64 + 91
            };
            srow.set(schema::stock::S_QUANTITY, Value::I64(quantity));
            srow.set(schema::stock::S_YTD, Value::U64(col_u64(&srow, schema::stock::S_YTD)? + qty));
            srow.set(schema::stock::S_ORDER_CNT, Value::U64(col_u64(&srow, schema::stock::S_ORDER_CNT)? + 1));
            if *supply_w != w {
                srow.set(schema::stock::S_REMOTE_CNT, Value::U64(col_u64(&srow, schema::stock::S_REMOTE_CNT)? + 1));
            }
            srv.update(txn, schema.stock, s_rid, srow)?;
            lines.push(Row::new(vec![
                Value::U64(w),
                Value::U64(d),
                Value::U64(o_id),
                Value::U64(number as u64 + 1),
                Value::U64(*i_id),
                Value::U64(*supply_w),
                Value::U64(*qty),
                Value::I64(price * *qty as i64),
                Value::U64(0),
            ]));
        }
        srv.insert_batch(txn, schema.order_line, lines)?;
        o_id_out = o_id;
        Ok(true)
    })?;
    Ok(TxnOutcome {
        kind: TxnKind::NewOrder,
        committed,
        audit: if committed {
            Audit::Order { w, d, o: o_id_out, entry: now_micros }
        } else {
            Audit::None
        },
    })
}

/// Executes one Payment transaction (clause 2.5).
///
/// # Errors
///
/// Propagates storage errors after rolling the transaction back.
pub fn payment(server: &mut DbServer, schema: &TpccSchema, rng: &mut SimRng) -> DbResult<TxnOutcome> {
    let scale = schema.scale;
    let w = rng.gen_range(1..=scale.warehouses);
    let d = rng.gen_range(1..=scale.districts_per_warehouse);
    // 15 % of payments are for a customer of another district/warehouse.
    let (c_w, c_d) = if rng.gen_bool(0.15) {
        if scale.warehouses > 1 {
            let mut ow = rng.gen_range(1..=scale.warehouses);
            if ow == w {
                ow = ow % scale.warehouses + 1;
            }
            (ow, rng.gen_range(1..=scale.districts_per_warehouse))
        } else {
            (w, rng.gen_range(1..=scale.districts_per_warehouse))
        }
    } else {
        (w, d)
    };
    let by_last_name = rng.gen_bool(0.60);
    let c_last = last_name(nurand(rng, 255, C_LASTNAME, 0, 999));
    let c_id = nurand(rng, 1023, C_CUSTOMER, 1, scale.customers_per_district);
    let amount = rng.gen_range(100..=500_000i64);

    let (_txn, committed) = with_txn(server, |srv, txn| {
        // Warehouse YTD.
        let w_rid = one_rid(srv.lookup_first(schema.warehouse, ix::PK, &[Value::U64(w)])?, "warehouse")?;
        let mut wrow = srv.get_row(schema.warehouse, w_rid)?;
        wrow.set(schema::warehouse::W_YTD, Value::I64(col_i64(&wrow, schema::warehouse::W_YTD)? + amount));
        srv.update(txn, schema.warehouse, w_rid, wrow)?;
        // District YTD.
        let d_rid = one_rid(
            srv.lookup_first(schema.district, ix::PK, &[Value::U64(w), Value::U64(d)])?,
            "district",
        )?;
        let mut drow = srv.get_row(schema.district, d_rid)?;
        drow.set(schema::district::D_YTD, Value::I64(col_i64(&drow, schema::district::D_YTD)? + amount));
        srv.update(txn, schema.district, d_rid, drow)?;
        // Customer: by last name (median match) or by id.
        let c_rid = if by_last_name {
            let matches = srv.prefix_scan(
                schema.customer,
                ix::CUSTOMER_BY_LAST,
                &[Value::U64(c_w), Value::U64(c_d), Value::Str(c_last.clone().into())],
            )?;
            if matches.is_empty() {
                one_rid(
                    srv.lookup_first(
                        schema.customer,
                        ix::PK,
                        &[Value::U64(c_w), Value::U64(c_d), Value::U64(c_id)],
                    )?,
                    "customer",
                )?
            } else {
                matches[matches.len() / 2]
            }
        } else {
            one_rid(
                srv.lookup_first(
                    schema.customer,
                    ix::PK,
                    &[Value::U64(c_w), Value::U64(c_d), Value::U64(c_id)],
                )?,
                "customer",
            )?
        };
        let mut crow = srv.get_row(schema.customer, c_rid)?;
        let real_c_id = col_u64(&crow, schema::customer::C_ID)?;
        crow.set(schema::customer::C_BALANCE, Value::I64(col_i64(&crow, schema::customer::C_BALANCE)? - amount));
        crow.set(schema::customer::C_YTD_PAYMENT, Value::I64(col_i64(&crow, schema::customer::C_YTD_PAYMENT)? + amount));
        crow.set(schema::customer::C_PAYMENT_CNT, Value::U64(col_u64(&crow, schema::customer::C_PAYMENT_CNT)? + 1));
        srv.update(txn, schema.customer, c_rid, crow)?;
        // History row.
        srv.insert(
            txn,
            schema.history,
            Row::new(vec![
                Value::U64(c_w),
                Value::U64(c_d),
                Value::U64(real_c_id),
                Value::I64(amount),
                Value::Str(format!("payment at w{w} d{d}").into()),
            ]),
        )?;
        Ok(true)
    })?;
    Ok(TxnOutcome { kind: TxnKind::Payment, committed, audit: Audit::None })
}

/// Executes one Order-Status transaction (clause 2.6, read-only).
///
/// # Errors
///
/// Propagates storage errors after rolling the transaction back.
pub fn order_status(
    server: &mut DbServer,
    schema: &TpccSchema,
    rng: &mut SimRng,
) -> DbResult<TxnOutcome> {
    let scale = schema.scale;
    let w = rng.gen_range(1..=scale.warehouses);
    let d = rng.gen_range(1..=scale.districts_per_warehouse);
    let by_last_name = rng.gen_bool(0.60);
    let c_last = last_name(nurand(rng, 255, C_LASTNAME, 0, 999));
    let c_id = nurand(rng, 1023, C_CUSTOMER, 1, scale.customers_per_district);

    let (_txn, committed) = with_txn(server, |srv, txn| {
        let _ = txn;
        let c_rid = if by_last_name {
            let matches = srv.prefix_scan(
                schema.customer,
                ix::CUSTOMER_BY_LAST,
                &[Value::U64(w), Value::U64(d), Value::Str(c_last.clone().into())],
            )?;
            match matches.get(matches.len() / 2) {
                Some(r) => *r,
                None => one_rid(
                    srv.lookup_first(
                        schema.customer,
                        ix::PK,
                        &[Value::U64(w), Value::U64(d), Value::U64(c_id)],
                    )?,
                    "customer",
                )?,
            }
        } else {
            one_rid(
                srv.lookup_first(schema.customer, ix::PK, &[Value::U64(w), Value::U64(d), Value::U64(c_id)])?,
                "customer",
            )?
        };
        let crow = srv.get_row(schema.customer, c_rid)?;
        let real_c = col_u64(&crow, schema::customer::C_ID)?;
        // The customer's most recent order, if any.
        let last = srv.last_under_prefix(
            schema.orders,
            ix::ORDERS_BY_CUSTOMER,
            &[Value::U64(w), Value::U64(d), Value::U64(real_c)],
        )?;
        if let Some(o_rid) = last.first() {
            let orow = srv.get_row(schema.orders, *o_rid)?;
            let o_id = col_u64(&orow, schema::orders::O_ID)?;
            let _lines = srv.read_rows_prefix(
                schema.order_line,
                ix::PK,
                &[Value::U64(w), Value::U64(d), Value::U64(o_id)],
            )?;
        }
        Ok(true)
    })?;
    Ok(TxnOutcome { kind: TxnKind::OrderStatus, committed, audit: Audit::None })
}

/// Executes one Delivery transaction (clause 2.7): delivers the oldest
/// undelivered order of every district of one warehouse.
///
/// # Errors
///
/// Propagates storage errors after rolling the transaction back.
pub fn delivery(server: &mut DbServer, schema: &TpccSchema, rng: &mut SimRng) -> DbResult<TxnOutcome> {
    let scale = schema.scale;
    let w = rng.gen_range(1..=scale.warehouses);
    let carrier = rng.gen_range(1..=10u64);
    let now_micros = server.clock().now().as_micros();

    let (_txn, committed) = with_txn(server, |srv, txn| {
        for d in 1..=scale.districts_per_warehouse {
            // Only the oldest pending order matters; collecting the whole
            // backlog made delivery O(backlog) and the backlog grows for
            // the life of the run (new-orders outpace the 4 % of steps
            // that deliver).
            let pending =
                srv.first_under_prefix(schema.new_order, ix::PK, &[Value::U64(w), Value::U64(d)])?;
            let Some(no_rid) = pending.first().copied() else { continue };
            let no_row = srv.get_row(schema.new_order, no_rid)?;
            let o_id = col_u64(&no_row, schema::new_order::NO_O_ID)?;
            srv.delete(txn, schema.new_order, no_rid)?;
            // The order itself.
            let o_rid = one_rid(
                srv.lookup_first(
                    schema.orders,
                    ix::PK,
                    &[Value::U64(w), Value::U64(d), Value::U64(o_id)],
                )?,
                "order",
            )?;
            let mut orow = srv.get_row(schema.orders, o_rid)?;
            let c_id = col_u64(&orow, schema::orders::O_C_ID)?;
            orow.set(schema::orders::O_CARRIER_ID, Value::U64(carrier));
            srv.update(txn, schema.orders, o_rid, orow)?;
            // Its lines: stamp delivery time and total the amounts.
            let lines = srv.read_rows_prefix(
                schema.order_line,
                ix::PK,
                &[Value::U64(w), Value::U64(d), Value::U64(o_id)],
            )?;
            let mut total = 0i64;
            for (rid, mut lrow) in lines {
                total += col_i64(&lrow, schema::order_line::OL_AMOUNT)?;
                lrow.set(schema::order_line::OL_DELIVERY_D, Value::U64(now_micros));
                srv.update(txn, schema.order_line, rid, lrow)?;
            }
            // Credit the customer.
            let c_rid = one_rid(
                srv.lookup_first(schema.customer, ix::PK, &[Value::U64(w), Value::U64(d), Value::U64(c_id)])?,
                "customer",
            )?;
            let mut crow = srv.get_row(schema.customer, c_rid)?;
            crow.set(schema::customer::C_BALANCE, Value::I64(col_i64(&crow, schema::customer::C_BALANCE)? + total));
            crow.set(schema::customer::C_DELIVERY_CNT, Value::U64(col_u64(&crow, schema::customer::C_DELIVERY_CNT)? + 1));
            srv.update(txn, schema.customer, c_rid, crow)?;
        }
        Ok(true)
    })?;
    Ok(TxnOutcome { kind: TxnKind::Delivery, committed, audit: Audit::None })
}

/// Executes one Stock-Level transaction (clause 2.8, read-only).
///
/// # Errors
///
/// Propagates storage errors after rolling the transaction back.
pub fn stock_level(
    server: &mut DbServer,
    schema: &TpccSchema,
    rng: &mut SimRng,
) -> DbResult<TxnOutcome> {
    let scale = schema.scale;
    let w = rng.gen_range(1..=scale.warehouses);
    let d = rng.gen_range(1..=scale.districts_per_warehouse);
    let threshold = rng.gen_range(10..=20i64);

    let (_txn, committed) = with_txn(server, |srv, txn| {
        let _ = txn;
        let d_rid = one_rid(
            srv.lookup_first(schema.district, ix::PK, &[Value::U64(w), Value::U64(d)])?,
            "district",
        )?;
        let drow = srv.get_row(schema.district, d_rid)?;
        let next_o = col_u64(&drow, schema::district::D_NEXT_O_ID)?;
        let from = next_o.saturating_sub(20).max(1);
        // Collect-then-dedup beats a set here: the ~200 line items carry
        // few duplicates, and one sort is cheaper than per-item tree nodes.
        let mut items = Vec::with_capacity(256);
        for o in from..next_o {
            let lines = srv.read_rows_prefix(
                schema.order_line,
                ix::PK,
                &[Value::U64(w), Value::U64(d), Value::U64(o)],
            )?;
            for (_, lrow) in lines {
                items.push(col_u64(&lrow, schema::order_line::OL_I_ID)?);
            }
        }
        items.sort_unstable();
        items.dedup();
        // Stock rows load in item order, so the sorted item list resolves
        // to mostly-sequential rids and one batched read covers them.
        let mut s_rids = Vec::with_capacity(items.len());
        for i_id in &items {
            s_rids.push(one_rid(
                srv.lookup_first(schema.stock, ix::PK, &[Value::U64(w), Value::U64(*i_id)])?,
                "stock",
            )?);
        }
        let mut low = 0u64;
        for srow in srv.read_rows(&s_rids)? {
            if col_i64(&srow, schema::stock::S_QUANTITY)? < threshold {
                low += 1;
            }
        }
        let _ = low;
        Ok(true)
    })?;
    Ok(TxnOutcome { kind: TxnKind::StockLevel, committed, audit: Audit::None })
}

/// Dispatches one transaction of the given kind.
///
/// # Errors
///
/// Propagates storage errors after rolling the transaction back.
pub fn execute(
    server: &mut DbServer,
    schema: &TpccSchema,
    rng: &mut SimRng,
    kind: TxnKind,
) -> DbResult<TxnOutcome> {
    match kind {
        TxnKind::NewOrder => new_order(server, schema, rng),
        TxnKind::Payment => payment(server, schema, rng),
        TxnKind::OrderStatus => order_status(server, schema, rng),
        TxnKind::Delivery => delivery(server, schema, rng),
        TxnKind::StockLevel => stock_level(server, schema, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::load_database;
    use crate::schema::{create_schema, TpccScale};
    use recobench_engine::{DiskLayout, InstanceConfig};
    use recobench_sim::SimClock;

    fn loaded() -> (DbServer, TpccSchema, SimRng) {
        let mut srv = DbServer::on_fresh_disks(
            "TX",
            SimClock::shared(),
            DiskLayout::four_disk(),
            InstanceConfig::default(),
        );
        srv.create_database().unwrap();
        let schema = create_schema(&mut srv, TpccScale::tiny(), 4, 2_048).unwrap();
        let mut rng = SimRng::seed_from(11);
        load_database(&mut srv, &schema, &mut rng).unwrap();
        (srv, schema, rng.fork(99))
    }

    #[test]
    fn new_order_commits_and_creates_rows() {
        let (mut srv, schema, mut rng) = loaded();
        let before = srv.peek_scan(schema.orders).unwrap().len();
        let mut committed = 0;
        for _ in 0..20 {
            let out = new_order(&mut srv, &schema, &mut rng).unwrap();
            if out.committed {
                committed += 1;
                assert!(matches!(out.audit, Audit::Order { .. }));
            }
        }
        assert!(committed >= 15, "most new-orders commit");
        let after = srv.peek_scan(schema.orders).unwrap().len();
        assert_eq!(after - before, committed);
        assert_eq!(srv.peek_scan(schema.new_order).unwrap().len(), committed);
    }

    #[test]
    fn payment_moves_money_consistently() {
        let (mut srv, schema, mut rng) = loaded();
        for _ in 0..20 {
            payment(&mut srv, &schema, &mut rng).unwrap();
        }
        // W_YTD still equals the sum of its districts' D_YTD.
        let report = crate::consistency::check_consistency(&srv, &schema).unwrap();
        assert!(report.is_consistent(), "violations: {:?}", report.violations);
        assert_eq!(srv.peek_scan(schema.history).unwrap().len(), 20);
    }

    #[test]
    fn delivery_clears_new_orders() {
        let (mut srv, schema, mut rng) = loaded();
        for _ in 0..30 {
            new_order(&mut srv, &schema, &mut rng).unwrap();
        }
        let pending_before = srv.peek_scan(schema.new_order).unwrap().len();
        assert!(pending_before > 0);
        for _ in 0..40 {
            delivery(&mut srv, &schema, &mut rng).unwrap();
        }
        let pending_after = srv.peek_scan(schema.new_order).unwrap().len();
        assert_eq!(pending_after, 0, "all pending orders delivered");
    }

    #[test]
    fn read_only_profiles_change_nothing() {
        let (mut srv, schema, mut rng) = loaded();
        for _ in 0..10 {
            new_order(&mut srv, &schema, &mut rng).unwrap();
        }
        let orders = srv.peek_scan(schema.orders).unwrap();
        let stock = srv.peek_scan(schema.stock).unwrap();
        for _ in 0..10 {
            order_status(&mut srv, &schema, &mut rng).unwrap();
            stock_level(&mut srv, &schema, &mut rng).unwrap();
        }
        assert_eq!(srv.peek_scan(schema.orders).unwrap(), orders);
        assert_eq!(srv.peek_scan(schema.stock).unwrap(), stock);
    }

    #[test]
    fn mix_draw_is_weighted() {
        let mut rng = SimRng::seed_from(5);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(TxnKind::draw(&mut rng)).or_insert(0u32) += 1;
        }
        let no = counts[&TxnKind::NewOrder] as f64 / 10_000.0;
        let pay = counts[&TxnKind::Payment] as f64 / 10_000.0;
        assert!((0.42..0.48).contains(&no), "new-order fraction {no}");
        assert!((0.40..0.46).contains(&pay), "payment fraction {pay}");
    }

    #[test]
    fn consistency_holds_after_a_mixed_burst() {
        let (mut srv, schema, mut rng) = loaded();
        for _ in 0..150 {
            let kind = TxnKind::draw(&mut rng);
            execute(&mut srv, &schema, &mut rng, kind).unwrap();
        }
        let report = crate::consistency::check_consistency(&srv, &schema).unwrap();
        assert!(report.is_consistent(), "violations: {:?}", report.violations);
    }
}
