//! Property-based tests of the simulation kernel's invariants.

use proptest::prelude::*;
use recobench_sim::disk::IoKind;
use recobench_sim::{Disk, DiskProfile, EventQueue, SimClock, SimDuration, SimRng, SimTime};

proptest! {
    #[test]
    fn event_queue_pops_in_nondecreasing_time_order(
        times in proptest::collection::vec(0u64..1_000_000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last, "events must pop in time order");
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    #[test]
    fn event_queue_is_fifo_within_a_timestamp(
        count in 1usize..100
    ) {
        let mut q = EventQueue::new();
        for i in 0..count {
            q.push(SimTime::from_secs(5), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..count).collect::<Vec<_>>());
    }

    #[test]
    fn disk_completions_are_monotone_regardless_of_arrival_pattern(
        requests in proptest::collection::vec((0u64..10_000_000, 0u64..1_000_000), 1..100)
    ) {
        // Requests submitted with nondecreasing arrival times complete in
        // nondecreasing order (single-server FIFO).
        let mut reqs = requests;
        reqs.sort_by_key(|(at, _)| *at);
        let mut disk = Disk::new(DiskProfile::server_2000());
        let mut last_done = SimTime::ZERO;
        for (at, bytes) in reqs {
            let done = disk.submit(SimTime::from_micros(at), IoKind::Read, bytes, false);
            prop_assert!(done >= SimTime::from_micros(at), "no time travel");
            prop_assert!(done >= last_done, "FIFO service order");
            last_done = done;
        }
    }

    #[test]
    fn disk_busy_time_never_exceeds_span(
        requests in proptest::collection::vec(0u64..100_000, 1..50)
    ) {
        // Total busy time can never exceed the makespan of the schedule.
        let mut disk = Disk::new(DiskProfile::server_2000());
        for bytes in &requests {
            disk.submit(SimTime::ZERO, IoKind::Write, *bytes, true);
        }
        let stats = disk.stats();
        prop_assert_eq!(
            stats.busy_micros,
            disk.busy_until().as_micros(),
            "back-to-back submissions keep the disk saturated"
        );
    }

    #[test]
    fn clock_is_monotone_under_arbitrary_advances(
        targets in proptest::collection::vec(0u64..1_000_000, 1..100)
    ) {
        let clock = SimClock::new();
        let mut high_water = SimTime::ZERO;
        for t in targets {
            clock.advance_to(SimTime::from_micros(t));
            high_water = high_water.max(SimTime::from_micros(t));
            prop_assert_eq!(clock.now(), high_water);
        }
    }

    #[test]
    fn duration_arithmetic_is_consistent(
        a in 0u64..1_000_000_000,
        b in 0u64..1_000_000_000,
    ) {
        let da = SimDuration::from_micros(a);
        let db = SimDuration::from_micros(b);
        prop_assert_eq!((da + db).as_micros(), a + b);
        let t = SimTime::from_micros(a) + db;
        prop_assert_eq!(t.saturating_since(SimTime::from_micros(a)), db);
    }

    #[test]
    fn rng_streams_are_reproducible_and_fork_stable(
        seed in any::<u64>(),
        stream in any::<u64>(),
    ) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        let mut fa = a.fork(stream);
        let mut fb = b.fork(stream);
        for _ in 0..16 {
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    #[test]
    fn gen_range_is_in_bounds(
        seed in any::<u64>(),
        lo in 0u64..1000,
        span in 1u64..1000,
    ) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..64 {
            let v = rng.gen_range(lo..lo + span);
            prop_assert!((lo..lo + span).contains(&v));
        }
    }
}
