//! A deterministic timestamped event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A priority queue of `(SimTime, E)` events ordered by time, with strict
/// FIFO ordering among events scheduled for the same instant.
///
/// Determinism matters: the whole benchmark must replay identically for a
/// given seed, so ties are broken by insertion sequence number rather than
/// by whatever order a plain heap happens to produce.
///
/// ```
/// use recobench_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// q.push(SimTime::from_secs(1), "early-second");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest
        // sequence number) pops first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `event` at instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Removes and returns the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// The timestamp of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every scheduled event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), 1u32);
        assert_eq!(q.pop_due(SimTime::from_secs(4)), None);
        assert_eq!(q.pop_due(SimTime::from_secs(5)), Some((SimTime::from_secs(5), 1)));
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::from_secs(1), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_times_sort() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
