//! A single-server disk service model.
//!
//! Each simulated disk serves one request at a time: a request issued while
//! the disk is busy queues behind the in-flight work. Service time is
//! `access_latency + bytes / bandwidth`, with sequential transfers paying a
//! reduced access cost. This simple M/D/1-flavoured model is enough to
//! reproduce the phenomena the paper measures: log-flush-bound commit
//! latency, checkpoint write bursts depressing foreground throughput, and
//! archive copies competing for spindles.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Static performance characteristics of a simulated disk.
///
/// The defaults model the paper's testbed class (year-2000 7200 rpm SCSI
/// disks on a Pentium III server): 8 ms average access, 20 MB/s transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskProfile {
    /// Average positioning (seek + rotational) latency for a random access.
    pub access: SimDuration,
    /// Positioning latency when the access is sequential with the previous
    /// request (track-to-track).
    pub sequential_access: SimDuration,
    /// Sustained transfer bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl DiskProfile {
    /// A year-2000 server-class spindle: 8 ms access, 20 MB/s transfer.
    pub fn server_2000() -> Self {
        DiskProfile {
            access: SimDuration::from_micros(8_000),
            sequential_access: SimDuration::from_micros(800),
            bandwidth_bytes_per_sec: 20 * 1024 * 1024,
        }
    }

    /// Service time for a single transfer of `bytes`.
    pub fn service_time(&self, bytes: u64, sequential: bool) -> SimDuration {
        let seek = if sequential { self.sequential_access } else { self.access };
        let transfer_micros = bytes.saturating_mul(1_000_000) / self.bandwidth_bytes_per_sec.max(1);
        seek + SimDuration::from_micros(transfer_micros)
    }
}

impl Default for DiskProfile {
    fn default() -> Self {
        Self::server_2000()
    }
}

/// Cumulative per-disk counters, for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Number of read requests served.
    pub reads: u64,
    /// Number of write requests served.
    pub writes: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total microseconds the disk spent busy.
    pub busy_micros: u64,
}

/// Whether a request is a read or a write (for accounting only; the service
/// model treats them identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// Data flows from the disk.
    Read,
    /// Data flows to the disk.
    Write,
}

/// A simulated disk.
///
/// ```
/// use recobench_sim::{Disk, DiskProfile, SimTime};
/// use recobench_sim::disk::IoKind;
///
/// let mut d = Disk::new(DiskProfile::server_2000());
/// let t0 = SimTime::ZERO;
/// let done1 = d.submit(t0, IoKind::Write, 8192, false);
/// let done2 = d.submit(t0, IoKind::Write, 8192, false);
/// assert!(done2 > done1, "second request queues behind the first");
/// ```
#[derive(Debug, Clone)]
pub struct Disk {
    profile: DiskProfile,
    busy_until: SimTime,
    stats: DiskStats,
}

impl Disk {
    /// Creates an idle disk with the given profile.
    pub fn new(profile: DiskProfile) -> Self {
        Disk { profile, busy_until: SimTime::ZERO, stats: DiskStats::default() }
    }

    /// Submits a transfer of `bytes` at instant `now` and returns its
    /// completion time. The request queues behind any in-flight work.
    pub fn submit(&mut self, now: SimTime, kind: IoKind, bytes: u64, sequential: bool) -> SimTime {
        let start = now.max(self.busy_until);
        let service = self.profile.service_time(bytes, sequential);
        let done = start + service;
        self.busy_until = done;
        self.stats.busy_micros += service.as_micros();
        match kind {
            IoKind::Read => {
                self.stats.reads += 1;
                self.stats.bytes_read += bytes;
            }
            IoKind::Write => {
                self.stats.writes += 1;
                self.stats.bytes_written += bytes;
            }
        }
        done
    }

    /// The instant at which all submitted work completes.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Whether the disk is idle at `now`.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Cumulative counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// The disk's static profile.
    pub fn profile(&self) -> DiskProfile {
        self.profile
    }

    /// Forgets all queued work and counters (used when a machine is
    /// power-cycled in a simulation).
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.stats = DiskStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_includes_seek_and_transfer() {
        let p = DiskProfile::server_2000();
        let t = p.service_time(20 * 1024 * 1024, false);
        // 8 ms seek + 1 s transfer.
        assert_eq!(t.as_micros(), 8_000 + 1_000_000);
    }

    #[test]
    fn sequential_access_is_cheaper() {
        let p = DiskProfile::server_2000();
        assert!(p.service_time(8192, true) < p.service_time(8192, false));
    }

    #[test]
    fn requests_queue() {
        let mut d = Disk::new(DiskProfile::server_2000());
        let a = d.submit(SimTime::ZERO, IoKind::Read, 0, false);
        let b = d.submit(SimTime::ZERO, IoKind::Read, 0, false);
        assert_eq!(a.as_micros(), 8_000);
        assert_eq!(b.as_micros(), 16_000);
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut d = Disk::new(DiskProfile::server_2000());
        let a = d.submit(SimTime::ZERO, IoKind::Write, 0, false);
        // Next request arrives long after the first completes.
        let late = SimTime::from_secs(10);
        let b = d.submit(late, IoKind::Write, 0, false);
        assert_eq!(a.as_micros(), 8_000);
        assert_eq!(b, late + SimDuration::from_micros(8_000));
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Disk::new(DiskProfile::server_2000());
        d.submit(SimTime::ZERO, IoKind::Read, 100, false);
        d.submit(SimTime::ZERO, IoKind::Write, 200, true);
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_read, 100);
        assert_eq!(s.bytes_written, 200);
        assert!(s.busy_micros > 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut d = Disk::new(DiskProfile::server_2000());
        d.submit(SimTime::ZERO, IoKind::Write, 4096, false);
        d.reset();
        assert!(d.is_idle_at(SimTime::ZERO));
        assert_eq!(d.stats(), DiskStats::default());
    }
}
