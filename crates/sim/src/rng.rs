//! Seeded random number generation for reproducible campaigns.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random source.
///
/// Every experiment derives all of its randomness (workload parameters,
/// data generation, latency jitter) from one `SimRng` so a campaign replays
/// bit-identically for a given seed. Sub-streams created with
/// [`SimRng::fork`] are independent of later draws from the parent, which
/// keeps component randomness decoupled (e.g. adding a draw to the TPC-C
/// loader does not perturb the fault-trigger jitter).
///
/// ```
/// use recobench_sim::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.gen_range(0..100), b.gen_range(0..100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent sub-stream labelled by `stream`.
    ///
    /// Forking consumes one draw from the parent; two forks with different
    /// labels are statistically independent.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.inner.next_u64();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform draw from `range` (half-open, like [`rand::Rng::gen_range`]).
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: rand::distributions::uniform::SampleUniform,
        R: rand::distributions::uniform::SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Chooses a uniformly random element of `slice`.
    ///
    /// Returns `None` when the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.gen_range(0..slice.len());
            Some(&slice[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn forks_differ_by_label() {
        let mut root = SimRng::seed_from(1);
        // Forks must come from identically-positioned parents to compare
        // labels alone.
        let mut root2 = SimRng::seed_from(1);
        let mut f1 = root.fork(1);
        let mut f2 = root2.fork(2);
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = SimRng::seed_from(9);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let one = [42u8];
        assert_eq!(rng.choose(&one), Some(&42));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::seed_from(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
