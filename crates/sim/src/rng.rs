//! Seeded random number generation for reproducible campaigns.
//!
//! The generator is self-contained (no external `rand` dependency): a
//! SplitMix64 state update feeding an xorshift-style finalizer, which is
//! plenty for workload parameter draws and latency jitter — this is a
//! simulation, not cryptography.

/// A deterministic random source.
///
/// Every experiment derives all of its randomness (workload parameters,
/// data generation, latency jitter) from one `SimRng` so a campaign replays
/// bit-identically for a given seed. Sub-streams created with
/// [`SimRng::fork`] are independent of later draws from the parent, which
/// keeps component randomness decoupled (e.g. adding a draw to the TPC-C
/// loader does not perturb the fault-trigger jitter).
///
/// ```
/// use recobench_sim::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.gen_range(0..100), b.gen_range(0..100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        // Scramble the seed once so small consecutive seeds (0, 1, 2 …)
        // don't produce correlated early draws.
        let mut rng = SimRng { state: seed ^ 0x5851_F42D_4C95_7F2D };
        rng.next_u64();
        rng
    }

    /// Derives an independent sub-stream labelled by `stream`.
    ///
    /// Forking consumes one draw from the parent; two forks with different
    /// labels are statistically independent.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform draw from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits → uniform on the unit interval.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p = {p}");
        if p == 1.0 {
            // gen_f64 never returns 1.0, so compare exclusively below and
            // special-case certainty.
            self.next_u64();
            return true;
        }
        self.gen_f64() < p
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood): one additive state step plus a
        // finalizer; passes BigCrush and is trivially seekable.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Chooses a uniformly random element of `slice`.
    ///
    /// Returns `None` when the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.gen_range(0..slice.len());
            Some(&slice[i])
        }
    }

    /// Uniform draw in `[0, n)` without modulo bias worth worrying about
    /// at simulation scales.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Numeric types [`SimRng::gen_range`] can sample.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open(rng: &mut SimRng, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(rng: &mut SimRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range on empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                (lo as u64).wrapping_add(rng.below(span)) as $t
            }
            fn sample_inclusive(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(rng.below(span + 1)) as $t
            }
        }
    )*};
}
impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range on empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add(rng.below(span) as i64) as $t
            }
            fn sample_inclusive(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(rng.below(span + 1) as i64) as $t
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, isize);

/// Range shapes [`SimRng::gen_range`] accepts.
pub trait SampleRange<T: SampleUniform> {
    /// Draws a value uniformly from `self`.
    fn sample(self, rng: &mut SimRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut SimRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut SimRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn forks_differ_by_label() {
        let mut root = SimRng::seed_from(1);
        // Forks must come from identically-positioned parents to compare
        // labels alone.
        let mut root2 = SimRng::seed_from(1);
        let mut f1 = root.fork(1);
        let mut f2 = root2.fork(2);
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = SimRng::seed_from(9);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let one = [42u8];
        assert_eq!(rng.choose(&one), Some(&42));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::seed_from(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..1000 {
            assert!((10..20u64).contains(&rng.gen_range(10..20u64)));
            assert!((0..=5i64).contains(&rng.gen_range(0..=5i64)));
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(rng.gen_range(7..8usize), 7);
        assert_eq!(rng.gen_range(3..=3u32), 3);
    }

    #[test]
    fn nearby_seeds_are_uncorrelated() {
        let mut a = SimRng::seed_from(0);
        let mut b = SimRng::seed_from(1);
        let matches = (0..64).filter(|_| (a.next_u64() ^ b.next_u64()).count_ones() < 8).count();
        assert_eq!(matches, 0);
    }
}
