//! Deterministic discrete-event simulation kernel for RecoBench.
//!
//! Everything in the benchmark — the DBMS engine, the TPC-C driver and the
//! fault injector — runs against a single simulated clock so that a
//! 20-minute experiment executes in milliseconds of wall time while all
//! reported measures (recovery time, checkpoint counts, lost transactions)
//! remain *internally consistent* time differences.
//!
//! The kernel provides:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time.
//! * [`SimClock`] — a shareable, monotonically advancing clock.
//! * [`EventQueue`] — a deterministic priority queue of timestamped events
//!   (FIFO among equal timestamps).
//! * [`Disk`] — a single-server disk service model with seek latency and
//!   transfer bandwidth; concurrent requests queue behind each other, which
//!   is what makes checkpoint write bursts visibly depress foreground
//!   transaction throughput.
//! * [`SimRng`] — a seeded RNG wrapper so whole campaigns are reproducible.

pub mod clock;
pub mod disk;
pub mod queue;
pub mod rng;
pub mod time;

pub use clock::SimClock;
pub use disk::{Disk, DiskProfile, DiskStats};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
