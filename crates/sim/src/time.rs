//! Simulated time: microsecond-resolution instants and durations.
//!
//! [`SimTime`] is an absolute instant on the simulation timeline (micros
//! since experiment start) and [`SimDuration`] is a span between instants.
//! Both are plain `u64` newtypes: cheap to copy, totally ordered, and immune
//! to the accidental unit confusion that plagues raw-integer timestamps.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulated timeline.
///
/// Instants are measured in microseconds since the start of the experiment.
///
/// ```
/// use recobench_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(150);
/// assert_eq!(t.as_secs_f64(), 150.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// ```
/// use recobench_sim::SimDuration;
///
/// let d = SimDuration::from_millis(8) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 8_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than every instant reachable in practice.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the origin.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a span from a float number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be finite and non-negative");
        SimDuration((secs * 1e6).round() as u64)
    }

    /// The span in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(250);
        assert_eq!(t.as_micros(), 3_250_000);
        assert_eq!((t - SimTime::from_secs(3)).as_micros(), 250_000);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn duration_from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn min_max_order() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(8)), "0.008s");
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_millis(2500));
        assert_eq!(d.saturating_sub(SimDuration::from_secs(20)), SimDuration::ZERO);
    }
}
