//! The shared simulation clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::time::{SimDuration, SimTime};

/// A monotonically advancing simulated clock, shareable across the engine,
/// the workload driver and the fault injector.
///
/// The clock only moves forward: [`SimClock::advance_to`] with an earlier
/// instant is a no-op. This makes it safe for several cooperating
/// components to report completion times out of order.
///
/// ```
/// use recobench_sim::{SimClock, SimDuration, SimTime};
///
/// let clock = SimClock::new();
/// clock.advance(SimDuration::from_secs(5));
/// clock.advance_to(SimTime::from_secs(3)); // ignored: time never rewinds
/// assert_eq!(clock.now(), SimTime::from_secs(5));
/// ```
#[derive(Debug, Default)]
pub struct SimClock {
    now_micros: AtomicU64,
}

impl SimClock {
    /// Creates a clock at the origin of the timeline.
    pub fn new() -> Self {
        SimClock { now_micros: AtomicU64::new(0) }
    }

    /// Creates a shareable clock at the origin.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.now_micros.load(Ordering::Relaxed))
    }

    /// Moves the clock forward to `t`; does nothing if `t` is in the past.
    pub fn advance_to(&self, t: SimTime) {
        self.now_micros.fetch_max(t.as_micros(), Ordering::Relaxed);
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&self, d: SimDuration) {
        let target = self.now() + d;
        self.advance_to(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero() {
        assert_eq!(SimClock::new().now(), SimTime::ZERO);
    }

    #[test]
    fn clock_never_rewinds() {
        let c = SimClock::new();
        c.advance_to(SimTime::from_secs(10));
        c.advance_to(SimTime::from_secs(4));
        assert_eq!(c.now(), SimTime::from_secs(10));
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        c.advance(SimDuration::from_millis(300));
        c.advance(SimDuration::from_millis(700));
        assert_eq!(c.now(), SimTime::from_secs(1));
    }

    #[test]
    fn shared_clock_is_visible_across_handles() {
        let c = SimClock::shared();
        let c2 = Arc::clone(&c);
        c.advance_to(SimTime::from_secs(2));
        assert_eq!(c2.now(), SimTime::from_secs(2));
    }
}
