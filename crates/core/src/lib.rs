//! The RecoBench dependability benchmark harness.
//!
//! This crate glues the substrates together into the paper's experimental
//! method: a TPC-C workload on the simulated DBMS, extended with a
//! faultload of operator faults and measures of recoverability.
//!
//! * [`RecoveryConfig`] — the sixteen recovery configurations of the
//!   paper's Table 3 (redo log file size × groups × checkpoint timeout).
//! * [`Experiment`] — one 20-simulated-minute benchmark run: create and
//!   load the database, take the cold backup, optionally instantiate a
//!   stand-by, drive TPC-C, inject one operator fault at its trigger
//!   instant, run the recovery procedure, keep driving to the end, then
//!   evaluate the measures.
//! * [`Measures`] — tpmC plus the dependability extensions: recovery time
//!   (end-user view), lost transactions, integrity violations.
//! * [`Campaign`] — parallel execution of experiment sets (one fault per
//!   experiment, exactly as the paper runs its 146 faults), with typed
//!   errors, input-order results, and progress callbacks.
//! * [`RecoveryBreakdown`] — where the recovery time went, phase by
//!   phase, derived from the engine's event stream.
//! * [`report`] — fixed-width tables for the per-table/figure
//!   regenerators in `recobench-bench`.

pub mod campaign;
pub mod configs;
pub mod experiment;
pub mod measures;
pub mod report;

pub use campaign::{Campaign, CampaignError, CampaignProgress, CampaignReport};
pub use configs::RecoveryConfig;
pub use experiment::{
    apply_margin_cutoff, Experiment, ExperimentBuilder, ExperimentOutcome, ExperimentScratch,
    ExperimentTemplate,
};
pub use measures::{Measures, RecoveryBreakdown};
