//! Campaign execution: many independent experiments, in parallel.
//!
//! The paper injects 146 faults across its configurations; RecoBench runs
//! each `(configuration, fault, trigger)` cell as an isolated experiment
//! (own clock, own disks) so campaigns parallelize perfectly across
//! threads.

use crate::experiment::{Experiment, ExperimentOutcome};

/// Runs every experiment, in order, using up to `threads` worker threads
/// (0 = one per available core). Results come back in input order; an
/// experiment whose *setup* failed is reported as an `Err` string in its
/// slot.
pub fn run_campaign(experiments: Vec<Experiment>, threads: usize) -> Vec<Result<ExperimentOutcome, String>> {
    let workers = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        threads
    };
    let n = experiments.len();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<Result<ExperimentOutcome, String>>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers.min(n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let outcome = experiments[i].run().map_err(|e| e.to_string());
                *slots[i].lock().unwrap() = Some(outcome);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::RecoveryConfig;
    use recobench_faults::FaultType;
    use recobench_tpcc::TpccScale;

    #[test]
    fn campaign_preserves_order_and_runs_all() {
        let mk = |cfg: &str, fault: Option<FaultType>| {
            let mut b = Experiment::builder(RecoveryConfig::named(cfg).unwrap())
                .duration_secs(150)
                .scale(TpccScale::tiny())
                .seed(3);
            if let Some(f) = fault {
                b = b.fault(f, 60);
            }
            b.build()
        };
        let exps = vec![
            mk("F10G3T5", None),
            mk("F1G3T1", Some(FaultType::ShutdownAbort)),
            mk("F40G3T10", None),
        ];
        let results = run_campaign(exps, 2);
        assert_eq!(results.len(), 3);
        let names: Vec<_> =
            results.iter().map(|r| r.as_ref().unwrap().config_name.clone()).collect();
        assert_eq!(names, vec!["F10G3T5", "F1G3T1", "F40G3T10"]);
        assert!(results[1].as_ref().unwrap().measures.recovery_time_secs.is_some());
    }
}
