//! Campaign execution: many independent experiments, in parallel.
//!
//! The paper injects 146 faults across its configurations; RecoBench runs
//! each `(configuration, fault, trigger)` cell as an isolated experiment
//! (own clock, own disks) so campaigns parallelize perfectly across
//! threads. [`Campaign`] is the one way to run a set of experiments:
//!
//! ```no_run
//! use recobench_core::{Campaign, Experiment, RecoveryConfig};
//!
//! let exps = vec![Experiment::builder(RecoveryConfig::named("F10G3T5").unwrap()).build()];
//! let report = Campaign::new(exps)
//!     .threads(4)
//!     .on_progress(|p| eprintln!("{}/{}", p.completed, p.total))
//!     .run();
//! for outcome in report.expect_all() {
//!     println!("{}: {:.0} tpmC", outcome.config_name, outcome.measures.tpmc);
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use recobench_engine::DbError;

use crate::experiment::{Experiment, ExperimentOutcome, ExperimentScratch, ExperimentTemplate};

/// An experiment whose *setup* failed (the benchmark itself was
/// misconfigured — injected faults and failed recoveries are outcomes,
/// not errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignError {
    /// Position of the failed experiment in the input order.
    pub index: usize,
    /// Name of the configuration under test.
    pub config: String,
    /// The underlying engine error.
    pub error: DbError,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "experiment #{} ({}): {}", self.index, self.config, self.error)
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A progress tick, delivered once per finished experiment (in completion
/// order, which under parallelism is not input order).
#[derive(Debug, Clone, Copy)]
pub struct CampaignProgress {
    /// Experiments finished so far, this one included.
    pub completed: usize,
    /// Total experiments in the campaign.
    pub total: usize,
    /// Input-order index of the experiment that just finished.
    pub index: usize,
    /// Whether it succeeded (its setup ran to completion).
    pub ok: bool,
}

/// A set of experiments plus how to run them.
pub struct Campaign {
    experiments: Vec<Experiment>,
    threads: usize,
    templates: bool,
    progress: Option<Arc<dyn Fn(CampaignProgress) + Send + Sync>>,
}

impl fmt::Debug for Campaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Campaign")
            .field("experiments", &self.experiments.len())
            .field("threads", &self.threads)
            .field("templates", &self.templates)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl Campaign {
    /// A campaign over `experiments`, defaulting to one worker per
    /// available core, snapshot templating on, and no progress reporting.
    pub fn new(experiments: Vec<Experiment>) -> Self {
        Campaign { experiments, threads: 0, templates: true, progress: None }
    }

    /// Caps the worker threads (0 = one per available core, the default).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Enables or disables snapshot templating (default: on). When on,
    /// cells with equal [`Experiment::template_key`]s share one setup
    /// template — built once, booted per cell from a copy-on-write clone.
    /// Outcomes are byte-identical either way (regression-tested); off
    /// exists for exactly that A/B check and for memory-starved hosts.
    pub fn templates(mut self, on: bool) -> Self {
        self.templates = on;
        self
    }

    /// Registers a callback invoked after every finished experiment. It
    /// may be called concurrently from several workers.
    pub fn on_progress<F>(mut self, f: F) -> Self
    where
        F: Fn(CampaignProgress) + Send + Sync + 'static,
    {
        self.progress = Some(Arc::new(f));
        self
    }

    /// Number of experiments queued.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// Whether the campaign is empty.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// Runs every experiment and collects the results **in input order**.
    pub fn run(self) -> CampaignReport {
        let workers = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            self.threads
        };
        let n = self.experiments.len();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let hits = AtomicUsize::new(0);
        let built = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<ExperimentOutcome, CampaignError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let experiments = &self.experiments;
        let progress = self.progress.as_deref();
        // Template registry, shared across workers: the first cell to need
        // a key builds its template inside the `OnceLock` (concurrent
        // requesters block on it, everyone else proceeds), later cells
        // reuse the finished `Arc`.
        type TemplateSlot = Arc<OnceLock<Result<Arc<ExperimentTemplate>, DbError>>>;
        let registry: Mutex<BTreeMap<String, TemplateSlot>> = Mutex::new(BTreeMap::new());
        let use_templates = self.templates;

        std::thread::scope(|scope| {
            for _ in 0..workers.min(n.max(1)) {
                scope.spawn(|| {
                    let mut scratch = ExperimentScratch::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let exp = &experiments[i];
                        let run = if use_templates {
                            let slot = {
                                let mut reg = registry.lock().unwrap();
                                Arc::clone(reg.entry(exp.template_key()).or_default())
                            };
                            let mut was_built = false;
                            let template = slot.get_or_init(|| {
                                was_built = true;
                                built.fetch_add(1, Ordering::Relaxed);
                                exp.build_template().map(Arc::new)
                            });
                            if !was_built {
                                hits.fetch_add(1, Ordering::Relaxed);
                            }
                            match template {
                                Ok(t) => exp.run_with_template_in(t, &mut scratch),
                                Err(e) => Err(e.clone()),
                            }
                        } else {
                            exp.run()
                        };
                        let result = run.map_err(|error| CampaignError {
                            index: i,
                            config: exp.config().name.clone(),
                            error,
                        });
                        let ok = result.is_ok();
                        *slots[i].lock().unwrap() = Some(result);
                        let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                        if let Some(cb) = progress {
                            cb(CampaignProgress { completed, total: n, index: i, ok });
                        }
                    }
                });
            }
        });

        CampaignReport {
            results: slots
                .into_iter()
                .map(|s| s.into_inner().unwrap().expect("every slot filled"))
                .collect(),
            template_hits: hits.into_inner(),
            templates_built: built.into_inner(),
        }
    }
}

/// Everything a campaign produced, in input order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    results: Vec<Result<ExperimentOutcome, CampaignError>>,
    template_hits: usize,
    templates_built: usize,
}

impl CampaignReport {
    /// Number of experiments run.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Cells that reused an already-built setup template (0 when
    /// templating was disabled).
    pub fn template_hits(&self) -> usize {
        self.template_hits
    }

    /// Distinct setup templates built (0 when templating was disabled).
    pub fn templates_built(&self) -> usize {
        self.templates_built
    }

    /// Whether the campaign was empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// All results, in input order.
    pub fn results(&self) -> &[Result<ExperimentOutcome, CampaignError>] {
        &self.results
    }

    /// The result at input position `i`.
    pub fn get(&self, i: usize) -> Option<&Result<ExperimentOutcome, CampaignError>> {
        self.results.get(i)
    }

    /// The successful outcomes, in input order.
    pub fn outcomes(&self) -> impl Iterator<Item = &ExperimentOutcome> {
        self.results.iter().filter_map(|r| r.as_ref().ok())
    }

    /// The setup failures, in input order.
    pub fn failures(&self) -> impl Iterator<Item = &CampaignError> {
        self.results.iter().filter_map(|r| r.as_ref().err())
    }

    /// Unwraps every outcome, panicking with the first setup failure.
    /// The table/figure regenerators use this: a setup failure there is a
    /// bug, not a benchmark result.
    pub fn expect_all(self) -> Vec<ExperimentOutcome> {
        self.results
            .into_iter()
            .map(|r| match r {
                Ok(out) => out,
                Err(e) => panic!("campaign setup failure: {e}"),
            })
            .collect()
    }

    /// Consumes the report into the raw result vector.
    pub fn into_results(self) -> Vec<Result<ExperimentOutcome, CampaignError>> {
        self.results
    }
}

impl IntoIterator for CampaignReport {
    type Item = Result<ExperimentOutcome, CampaignError>;
    type IntoIter = std::vec::IntoIter<Self::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.results.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::RecoveryConfig;
    use recobench_faults::FaultType;
    use recobench_tpcc::TpccScale;

    fn mk(cfg: &str, fault: Option<FaultType>) -> Experiment {
        let mut b = Experiment::builder(RecoveryConfig::named(cfg).unwrap())
            .duration_secs(150)
            .scale(TpccScale::tiny())
            .seed(3);
        if let Some(f) = fault {
            b = b.fault(f, 60);
        }
        b.build()
    }

    #[test]
    fn campaign_preserves_order_and_reports_progress() {
        let exps = vec![
            mk("F10G3T5", None),
            mk("F1G3T1", Some(FaultType::ShutdownAbort)),
            mk("F40G3T10", None),
        ];
        let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let report = Campaign::new(exps)
            .threads(2)
            .on_progress(move |p| {
                assert_eq!(p.total, 3);
                assert!(p.ok);
                sink.lock().unwrap().push(p.index);
            })
            .run();
        assert_eq!(report.len(), 3);
        assert_eq!(report.failures().count(), 0);
        let names: Vec<_> =
            report.outcomes().map(|o| o.config_name.clone()).collect();
        assert_eq!(names, vec!["F10G3T5", "F1G3T1", "F40G3T10"]);
        assert!(report.get(1).unwrap().as_ref().unwrap().measures.recovery_time_secs.is_some());
        let mut indices = seen.lock().unwrap().clone();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2], "every experiment ticks progress exactly once");
    }

    /// The determinism contract of DESIGN.md §9: per-cell outcomes are a
    /// pure function of the experiment definition — not of the thread
    /// count and not of whether setup ran fresh or replayed from a shared
    /// snapshot template.
    #[test]
    fn outcomes_are_identical_across_threads_and_templating() {
        let cells = || {
            vec![
                // Three cells sharing one template key (same config, scale,
                // seed) but differing in fault — the sharing-sensitive case.
                mk("F10G3T5", None),
                mk("F10G3T5", Some(FaultType::ShutdownAbort)),
                mk("F10G3T5", Some(FaultType::DeleteDatafile)),
                // A second key, with event capture on so the prepended
                // setup JSONL is covered too.
                Experiment::builder(RecoveryConfig::named("F1G3T1").unwrap())
                    .duration_secs(150)
                    .scale(TpccScale::tiny())
                    .seed(7)
                    .capture_events(true)
                    .fault(FaultType::ShutdownAbort, 60)
                    .build(),
            ]
        };
        let baseline =
            Campaign::new(cells()).threads(1).templates(false).run();
        assert_eq!(baseline.template_hits(), 0);
        assert_eq!(baseline.templates_built(), 0);
        let baseline = baseline.expect_all();
        for (threads, templates) in [(1, true), (4, true), (4, false)] {
            let report =
                Campaign::new(cells()).threads(threads).templates(templates).run();
            if templates {
                assert_eq!(report.templates_built(), 2, "two distinct keys");
                assert_eq!(report.template_hits(), 2, "two cells reused one");
            }
            let outs = report.expect_all();
            assert_eq!(
                outs, baseline,
                "threads={threads} templates={templates} must replay byte-identically"
            );
        }
    }

    /// The `terminals` dimension composes with snapshot templating: a
    /// cell's outcome is a function of its terminal count and seed, never
    /// of whether the database image was replayed from a shared template.
    #[test]
    fn terminals_dimension_is_deterministic_under_templating() {
        let cell = |n: usize| {
            Experiment::builder(RecoveryConfig::named("F10G3T5").unwrap())
                .duration_secs(150)
                .scale(TpccScale::tiny())
                .seed(11)
                .terminals(n)
                .build()
        };
        let run = |templates: bool| {
            Campaign::new(vec![cell(1), cell(8)])
                .threads(2)
                .templates(templates)
                .run()
                .expect_all()
        };
        let with = run(true);
        let without = run(false);
        assert_eq!(with, without, "templating must not leak into any terminal count");
        assert_eq!(with[0].terminals, 1);
        assert_eq!(with[1].terminals, 8);
        assert!(
            with[1].measures.tpmc > with[0].measures.tpmc,
            "eight terminals must outrun one ({} vs {})",
            with[1].measures.tpmc,
            with[0].measures.tpmc
        );
    }

    #[test]
    fn expect_all_returns_input_order() {
        let outs = Campaign::new(vec![mk("F40G3T10", None), mk("F10G3T5", None)])
            .threads(2)
            .run()
            .expect_all();
        assert_eq!(outs[0].config_name, "F40G3T10");
        assert_eq!(outs[1].config_name, "F10G3T5");
    }
}
