//! The recovery configurations of the paper's Table 3.

use recobench_engine::InstanceConfig;
use serde::{Deserialize, Serialize};

/// One recovery configuration: the knobs the paper varies.
///
/// Names follow the paper's scheme: `F<file MB>G<groups>T<timeout minutes>`
/// — e.g. `F40G3T10` is 40 MB redo files, 3 groups, a 600 s checkpoint
/// timeout.
///
/// ```
/// use recobench_core::RecoveryConfig;
///
/// let c = RecoveryConfig::named("F10G3T5").unwrap();
/// assert_eq!(c.redo_file_mb, 10);
/// assert_eq!(c.redo_groups, 3);
/// assert_eq!(c.checkpoint_timeout_secs, 300);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Paper-style name.
    pub name: String,
    /// Online redo log file size in megabytes.
    pub redo_file_mb: u64,
    /// Number of online redo log groups.
    pub redo_groups: u32,
    /// `log_checkpoint_timeout` in seconds.
    pub checkpoint_timeout_secs: u64,
}

impl RecoveryConfig {
    /// Builds a configuration from its components.
    pub fn new(redo_file_mb: u64, redo_groups: u32, checkpoint_timeout_secs: u64) -> Self {
        RecoveryConfig {
            name: format!("F{redo_file_mb}G{redo_groups}T{}", checkpoint_timeout_secs / 60),
            redo_file_mb,
            redo_groups,
            checkpoint_timeout_secs,
        }
    }

    /// Parses a paper-style name like `F40G3T10`.
    ///
    /// Returns `None` when the name does not follow the scheme.
    pub fn named(name: &str) -> Option<RecoveryConfig> {
        let rest = name.strip_prefix('F')?;
        let g_pos = rest.find('G')?;
        let t_pos = rest.find('T')?;
        let file_mb: u64 = rest[..g_pos].parse().ok()?;
        let groups: u32 = rest[g_pos + 1..t_pos].parse().ok()?;
        let timeout_min: u64 = rest[t_pos + 1..].parse().ok()?;
        if groups < 2 {
            return None;
        }
        Some(RecoveryConfig::new(file_mb, groups, timeout_min * 60))
    }

    /// The sixteen configurations of the paper's Table 3, in its order.
    pub fn table3() -> Vec<RecoveryConfig> {
        [
            (400, 3, 20),
            (400, 3, 10),
            (400, 3, 5),
            (400, 3, 1),
            (100, 3, 20),
            (100, 3, 10),
            (100, 3, 5),
            (100, 3, 1),
            (40, 3, 10),
            (40, 3, 5),
            (40, 3, 1),
            (10, 3, 5),
            (10, 3, 1),
            (1, 6, 1),
            (1, 3, 1),
            (1, 2, 1),
        ]
        .into_iter()
        .map(|(f, g, t_min)| RecoveryConfig::new(f, g, t_min * 60))
        .collect()
    }

    /// The archive-log subset the paper uses for §5.2 (F40G3T10 … F1G2T1;
    /// larger files would not start archiving within one experiment).
    pub fn archive_subset() -> Vec<RecoveryConfig> {
        RecoveryConfig::table3().into_iter().filter(|c| c.redo_file_mb <= 40).collect()
    }

    /// Converts to an engine [`InstanceConfig`].
    pub fn to_instance_config(&self, archive_mode: bool) -> InstanceConfig {
        InstanceConfig::builder()
            .redo_file_mb(self.redo_file_mb)
            .redo_groups(self.redo_groups)
            .checkpoint_timeout_secs(self.checkpoint_timeout_secs)
            .archive_mode(archive_mode)
            .build()
    }

    /// The number of log-switch checkpoints the paper observed for this
    /// configuration over a 20-minute run (the "#CKPT per Experiment"
    /// column of Table 3) — used as a calibration reference.
    pub fn paper_checkpoints(&self) -> Option<u64> {
        let v = match self.name.as_str() {
            "F400G3T20" | "F400G3T10" | "F400G3T5" | "F400G3T1" => 1,
            "F100G3T20" | "F100G3T10" | "F100G3T5" => 5,
            "F100G3T1" => 4,
            "F40G3T10" => 13,
            "F40G3T5" => 12,
            "F40G3T1" => 14,
            "F10G3T5" => 54,
            "F10G3T1" => 55,
            "F1G6T1" => 319,
            "F1G3T1" => 380,
            "F1G2T1" => 263,
            _ => return None,
        };
        Some(v)
    }
}

impl std::fmt::Display for RecoveryConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_sixteen_named_configs() {
        let configs = RecoveryConfig::table3();
        assert_eq!(configs.len(), 16);
        assert_eq!(configs[0].name, "F400G3T20");
        assert_eq!(configs[15].name, "F1G2T1");
        for c in &configs {
            assert!(c.paper_checkpoints().is_some(), "{} lacks a paper reference", c.name);
        }
    }

    #[test]
    fn name_round_trips() {
        for c in RecoveryConfig::table3() {
            let parsed = RecoveryConfig::named(&c.name).unwrap();
            assert_eq!(parsed, c);
        }
    }

    #[test]
    fn named_rejects_garbage() {
        assert!(RecoveryConfig::named("XYZ").is_none());
        assert!(RecoveryConfig::named("F40G1T10").is_none(), "one group is invalid");
        assert!(RecoveryConfig::named("FxxG3T1").is_none());
    }

    #[test]
    fn archive_subset_drops_large_files() {
        let subset = RecoveryConfig::archive_subset();
        assert_eq!(subset.len(), 8);
        assert!(subset.iter().all(|c| c.redo_file_mb <= 40));
    }

    #[test]
    fn converts_to_instance_config() {
        let c = RecoveryConfig::named("F1G6T1").unwrap();
        let ic = c.to_instance_config(true);
        assert_eq!(ic.redo_file_bytes, 1024 * 1024);
        assert_eq!(ic.redo_groups, 6);
        assert!(ic.archive_mode);
    }
}
