//! The benchmark's measures: performance plus the paper's three
//! dependability extensions.

use serde::{Deserialize, Serialize};

/// Measures of one experiment, taken from the end-user point of view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measures {
    /// Committed New-Order transactions per minute over the measurement
    /// window (up to the fault, or the whole run when fault-free).
    pub tpmc: f64,
    /// Recovery time in seconds: from fault activation until transaction
    /// execution is re-established at the client. `None` for fault-free
    /// runs; also `None` when the run ended before service returned (the
    /// paper reports those cells as "> 600").
    pub recovery_time_secs: Option<f64>,
    /// Whether service returned before the experiment ended.
    pub recovered_within_run: bool,
    /// Committed-and-acknowledged transactions whose effects are missing
    /// after recovery.
    pub lost_transactions: u64,
    /// TPC-C consistency violations detected after recovery.
    pub integrity_violations: u64,
    /// Log-switch (full) checkpoints during the run — Table 3's
    /// "#CKPT per Experiment" column.
    pub checkpoints: u64,
    /// Log switches during the run.
    pub log_switches: u64,
    /// Redo generated during the run, in MB (change vectors included).
    pub redo_mb: f64,
    /// Transaction attempts that failed with an error.
    pub client_errors: u64,
    /// Committed transactions of all five profiles.
    pub total_commits: u64,
}

impl Measures {
    /// Renders the recovery time the way the paper's tables do:
    /// seconds, or `> <cap>` when service did not return within the run.
    pub fn recovery_cell(&self, cap_secs: u64) -> String {
        match (self.recovery_time_secs, self.recovered_within_run) {
            (Some(rt), true) => format!("{rt:.0}"),
            (_, false) => format!(">{cap_secs}"),
            (None, true) => "-".to_string(),
        }
    }
}

/// Where a recovery's time went, decomposed by engine phase, in
/// microseconds of simulated time.
///
/// Built from the engine's `PhaseSpan` events clipped to the window
/// between fault activation and the end of the recovery procedure;
/// `other_us` absorbs whatever that window contains that no span claims
/// (detection gaps, admin-command latencies) and `service_resume_us` is
/// the tail from the procedure finishing to the first transaction
/// committing at the client again. By construction
/// [`total_us`](RecoveryBreakdown::total_us) equals the reported recovery
/// time exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryBreakdown {
    /// Operator detection time between fault activation and the start of
    /// the recovery procedure.
    pub detection_us: u64,
    /// Instance restart: startup + mount (+ `RECOVER` admin command).
    pub instance_startup_us: u64,
    /// Restoring datafiles from the cold backup.
    pub media_restore_us: u64,
    /// Reading online and archived redo.
    pub redo_scan_us: u64,
    /// Applying (or skipping) scanned redo records.
    pub redo_apply_us: u64,
    /// Rolling back transactions left unresolved by replay.
    pub txn_rollback_us: u64,
    /// Stand-by activation (failover experiments only).
    pub standby_activation_us: u64,
    /// Recovery-window time not attributed to any phase span.
    pub other_us: u64,
    /// From the recovery procedure finishing to the first client commit.
    pub service_resume_us: u64,
}

impl RecoveryBreakdown {
    /// Total microseconds — equals the recovery time reported in
    /// [`Measures::recovery_time_secs`] by construction.
    pub fn total_us(&self) -> u64 {
        self.detection_us
            + self.instance_startup_us
            + self.media_restore_us
            + self.redo_scan_us
            + self.redo_apply_us
            + self.txn_rollback_us
            + self.standby_activation_us
            + self.other_us
            + self.service_resume_us
    }

    /// Total in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_us() as f64 / 1_000_000.0
    }
}

impl Default for Measures {
    fn default() -> Self {
        Measures {
            tpmc: 0.0,
            recovery_time_secs: None,
            recovered_within_run: true,
            lost_transactions: 0,
            integrity_violations: 0,
            checkpoints: 0,
            log_switches: 0,
            redo_mb: 0.0,
            client_errors: 0,
            total_commits: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_sum_every_phase() {
        let b = RecoveryBreakdown {
            detection_us: 1,
            instance_startup_us: 2,
            media_restore_us: 3,
            redo_scan_us: 4,
            redo_apply_us: 5,
            txn_rollback_us: 6,
            standby_activation_us: 7,
            other_us: 8,
            service_resume_us: 500_000,
        };
        assert_eq!(b.total_us(), 500_036);
        assert!((b.total_secs() - 0.500_036).abs() < 1e-12);
    }

    #[test]
    fn recovery_cell_formats_like_the_paper() {
        let mut m = Measures { recovery_time_secs: Some(34.4), ..Default::default() };
        assert_eq!(m.recovery_cell(600), "34");
        m.recovered_within_run = false;
        assert_eq!(m.recovery_cell(600), ">600");
        let fault_free = Measures::default();
        assert_eq!(fault_free.recovery_cell(600), "-");
    }
}
