//! The benchmark's measures: performance plus the paper's three
//! dependability extensions.

use serde::{Deserialize, Serialize};

/// Measures of one experiment, taken from the end-user point of view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measures {
    /// Committed New-Order transactions per minute over the measurement
    /// window (up to the fault, or the whole run when fault-free).
    pub tpmc: f64,
    /// Recovery time in seconds: from fault activation until transaction
    /// execution is re-established at the client. `None` for fault-free
    /// runs; also `None` when the run ended before service returned (the
    /// paper reports those cells as "> 600").
    pub recovery_time_secs: Option<f64>,
    /// Whether service returned before the experiment ended.
    pub recovered_within_run: bool,
    /// Committed-and-acknowledged transactions whose effects are missing
    /// after recovery.
    pub lost_transactions: u64,
    /// TPC-C consistency violations detected after recovery.
    pub integrity_violations: u64,
    /// Log-switch (full) checkpoints during the run — Table 3's
    /// "#CKPT per Experiment" column.
    pub checkpoints: u64,
    /// Log switches during the run.
    pub log_switches: u64,
    /// Redo generated during the run, in MB (change vectors included).
    pub redo_mb: f64,
    /// Transaction attempts that failed with an error.
    pub client_errors: u64,
    /// Committed transactions of all five profiles.
    pub total_commits: u64,
}

impl Measures {
    /// Renders the recovery time the way the paper's tables do:
    /// seconds, or `> <cap>` when service did not return within the run.
    pub fn recovery_cell(&self, cap_secs: u64) -> String {
        match (self.recovery_time_secs, self.recovered_within_run) {
            (Some(rt), true) => format!("{rt:.0}"),
            (_, false) => format!(">{cap_secs}"),
            (None, true) => "-".to_string(),
        }
    }
}

impl Default for Measures {
    fn default() -> Self {
        Measures {
            tpmc: 0.0,
            recovery_time_secs: None,
            recovered_within_run: true,
            lost_transactions: 0,
            integrity_violations: 0,
            checkpoints: 0,
            log_switches: 0,
            redo_mb: 0.0,
            client_errors: 0,
            total_commits: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_cell_formats_like_the_paper() {
        let mut m = Measures { recovery_time_secs: Some(34.4), ..Default::default() };
        assert_eq!(m.recovery_cell(600), "34");
        m.recovered_within_run = false;
        assert_eq!(m.recovery_cell(600), ">600");
        let fault_free = Measures::default();
        assert_eq!(fault_free.recovery_cell(600), "-");
    }
}
