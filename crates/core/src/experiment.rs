//! One benchmark experiment: the paper's §4 procedure.
//!
//! Setup (database creation, TPC-C load, cold backup, optional stand-by
//! instantiation) happens before the workload timer starts; the fault
//! triggers at its offset from workload start; the recovery procedure runs
//! immediately after the (constant, small) detection time; the driver
//! keeps submitting transactions until the 20 simulated minutes are over;
//! then the measures are evaluated.

use recobench_engine::{
    DbResult, DbServer, DbSnapshot, DiskLayout, EngineEvent, FailoverPolicy, RecoveryPhase,
    ReplicaSet, ReplicaTopology,
};
use recobench_faults::{FaultInjector, FaultPlan, FaultType};
use recobench_sim::{SimClock, SimDuration, SimRng, SimTime};
use recobench_tpcc::{
    check_consistency, create_schema, load_database, AvailabilityTimeline, DriverConfig,
    TpccDriver, TpccScale,
};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

use crate::configs::RecoveryConfig;
use crate::measures::{Measures, RecoveryBreakdown};

/// A recovery-phase span observed on one of the experiment's servers:
/// `(end, phase, start)`, in record order.
type SpanLog = Arc<Mutex<Vec<(SimTime, RecoveryPhase, SimTime)>>>;

/// Applies the imprecision of time-based incomplete recovery to an
/// injection record: `RECOVER UNTIL TIME` stops at the SCN in force
/// `margin` *before* the fault, so the record's pre-fault SCN is clamped
/// down to the latest trail entry at or before that cutoff. `trail` is
/// the rolling `(time, SCN)` series the harness samples between client
/// transactions; an empty or too-recent trail leaves the record alone
/// (nothing committed in the margin, nothing extra to lose).
///
/// Shared between [`Experiment::run`] and the torture runner
/// (`recobench-oracle`), whose differential model must truncate at
/// exactly the SCN the engine will recover to.
pub fn apply_margin_cutoff(
    record: &mut recobench_faults::InjectionRecord,
    trail: &[(SimTime, recobench_engine::Scn)],
    margin: SimDuration,
) {
    let cutoff = SimTime::from_micros(
        record.injected_at.as_micros().saturating_sub(margin.as_micros()),
    );
    if let Some((_, scn)) = trail.iter().rev().find(|(t, _)| *t <= cutoff) {
        record.scn_before = (*scn).min(record.scn_before);
    }
}

/// Subscribes the experiment's observers on one server's event sink: the
/// span collector always, plus the JSONL writer when event capture is on.
fn observe(server: &mut DbServer, name: &str, spans: &SpanLog, jsonl: &Option<Arc<Mutex<String>>>) {
    let sink = server.events_mut();
    let spans = Arc::clone(spans);
    sink.subscribe(move |at, ev| {
        if let EngineEvent::PhaseSpan { phase, started_at } = ev {
            spans.lock().unwrap().push((at, *phase, *started_at));
        }
    });
    if let Some(buf) = jsonl {
        let buf = Arc::clone(buf);
        let name = name.to_string();
        sink.subscribe(move |at, ev| {
            let mut out = buf.lock().unwrap();
            ev.write_json(at, &name, &mut out);
            out.push('\n');
        });
    }
}

/// A reusable setup snapshot: the loaded-and-backed-up database image one
/// experiment's setup phase produces, captured so that every cell with the
/// same setup inputs can boot a copy-on-write clone instead of repeating
/// the load. Built by [`Experiment::build_template`], consumed by
/// [`Experiment::run_with_template`]; [`Campaign`](crate::Campaign)
/// deduplicates templates by [`Experiment::template_key`] and shares them
/// across worker threads.
#[derive(Debug, Clone)]
pub struct ExperimentTemplate {
    snapshot: DbSnapshot,
    schema: recobench_tpcc::TpccSchema,
    setup_jsonl: String,
    key: String,
}

impl ExperimentTemplate {
    /// The setup-identity key this template was built for.
    pub fn key(&self) -> &str {
        &self.key
    }
}

/// Reusable per-worker buffers for [`Experiment::run_with_template_in`]:
/// campaign workers keep one across cells so span logs, SCN trails and
/// event-capture strings reuse their allocations instead of regrowing from
/// empty every experiment.
#[derive(Debug, Default)]
pub struct ExperimentScratch {
    spans: Vec<(SimTime, RecoveryPhase, SimTime)>,
    trail: Vec<(SimTime, recobench_engine::Scn)>,
    jsonl: String,
}

/// A fully specified experiment, ready to run.
#[derive(Debug, Clone)]
pub struct Experiment {
    config: RecoveryConfig,
    archive: bool,
    standby: bool,
    topology: ReplicaTopology,
    policy: FailoverPolicy,
    second_fault_secs: Option<u64>,
    fault: Option<FaultPlan>,
    duration: SimDuration,
    seed: u64,
    scale: TpccScale,
    driver_cfg: DriverConfig,
    datafiles: u32,
    blocks_per_file: u64,
    layout: DiskLayout,
    capture_events: bool,
}

/// Builder for [`Experiment`].
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    exp: Experiment,
}

/// Everything one experiment produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    /// Configuration name (paper scheme).
    pub config_name: String,
    /// Whether ARCHIVELOG mode was on.
    pub archive: bool,
    /// Whether a stand-by database was used.
    pub standby: bool,
    /// Replica topology behind the primary (`none` when unprotected).
    #[serde(default)]
    pub topology: String,
    /// Failover policy in force for the replica set.
    #[serde(default)]
    pub policy: String,
    /// Failovers the replica set completed during the run.
    #[serde(default)]
    pub failovers: u64,
    /// The injected fault, if any.
    pub fault: Option<FaultType>,
    /// Trigger offset in seconds, if a fault was injected.
    pub trigger_secs: Option<u64>,
    /// Emulated terminals driving the workload.
    #[serde(default)]
    pub terminals: usize,
    /// Lock waits the engine recorded over the run.
    #[serde(default)]
    pub lock_waits: u64,
    /// Deadlocks the engine detected (and broke) over the run.
    #[serde(default)]
    pub deadlocks: u64,
    /// The measures.
    pub measures: Measures,
    /// Where the recovery time went, phase by phase. `Some` exactly when
    /// [`Measures::recovery_time_secs`] is `Some`; the phases sum to it.
    pub breakdown: Option<RecoveryBreakdown>,
    /// Per-second committed-transaction buckets over the whole run, from
    /// the end-user point of view.
    pub timeline: AvailabilityTimeline,
    /// The full engine event stream (both servers) as JSONL, when the
    /// experiment was built with
    /// [`capture_events`](ExperimentBuilder::capture_events).
    pub events_jsonl: Option<String>,
    /// Redo records re-applied by the recovery procedure.
    pub recovery_records_applied: u64,
    /// Archive files the recovery procedure processed.
    pub recovery_archives: u64,
    /// Whether the recovery procedure itself failed (the configuration
    /// cannot tolerate this fault — e.g. no archives, no backup).
    pub unrecoverable: bool,
}

impl Experiment {
    /// Starts building an experiment on `config`.
    pub fn builder(config: RecoveryConfig) -> ExperimentBuilder {
        ExperimentBuilder {
            exp: Experiment {
                config,
                archive: true,
                standby: false,
                topology: ReplicaTopology::none(),
                policy: FailoverPolicy::Manual,
                second_fault_secs: None,
                fault: None,
                duration: SimDuration::from_secs(1_200),
                seed: 1,
                scale: TpccScale::mini(),
                driver_cfg: DriverConfig::default(),
                datafiles: 8,
                blocks_per_file: 768,
                layout: DiskLayout::four_disk(),
                capture_events: false,
            },
        }
    }

    /// The configuration under test.
    pub fn config(&self) -> &RecoveryConfig {
        &self.config
    }

    /// Runs the experiment to completion: builds (or rebuilds) its setup
    /// template, then runs the measured phase from it. Campaigns avoid the
    /// rebuild by sharing templates across cells with equal
    /// [`Experiment::template_key`]s.
    ///
    /// # Errors
    ///
    /// Fails only on *setup* problems (the benchmark itself is
    /// misconfigured); faults and failed recoveries are results, not
    /// errors.
    pub fn run(&self) -> DbResult<ExperimentOutcome> {
        let template = self.build_template()?;
        self.run_with_template(&template)
    }

    /// Identity of this experiment's setup phase: cells whose keys match
    /// produce byte-identical post-setup disk images and may share one
    /// [`ExperimentTemplate`]. Fault plan, duration, driver config and
    /// stand-by topology are deliberately excluded — they only shape the
    /// measured phase.
    pub fn template_key(&self) -> String {
        format!(
            "{:?}|archive={}|{:?}|files={}x{}|seed={}|{:?}",
            self.config, self.archive, self.scale, self.datafiles, self.blocks_per_file,
            self.seed, self.layout,
        )
    }

    /// Runs the setup phase once — create database, create schema, TPC-C
    /// load, cold backup — and captures the result as a reusable template.
    ///
    /// # Errors
    ///
    /// Fails on setup problems (storage exhaustion, misconfiguration).
    pub fn build_template(&self) -> DbResult<ExperimentTemplate> {
        let clock = SimClock::shared();
        let icfg = self.config.to_instance_config(self.archive);
        // Setup events are always captured into the template (they are a
        // few hundred lines); cells that export events prepend them so the
        // stream matches a monolithic run's.
        let jsonl = Arc::new(Mutex::new(String::new()));
        let mut primary = DbServer::on_fresh_disks(
            "PRIMARY",
            Arc::clone(&clock),
            self.layout.clone(),
            icfg,
        );
        {
            let buf = Arc::clone(&jsonl);
            primary.events_mut().subscribe(move |at, ev| {
                let mut out = buf.lock().unwrap();
                ev.write_json(at, "PRIMARY", &mut out);
                out.push('\n');
            });
        }
        primary.create_database()?;
        let mut rng = SimRng::seed_from(self.seed);
        let schema = create_schema(&mut primary, self.scale, self.datafiles, self.blocks_per_file)?;
        let mut load_rng = rng.fork(1);
        load_database(&mut primary, &schema, &mut load_rng)?;
        primary.take_cold_backup()?;
        let snapshot = primary.snapshot();
        let setup_jsonl = jsonl.lock().unwrap().clone();
        Ok(ExperimentTemplate { snapshot, schema, setup_jsonl, key: self.template_key() })
    }

    /// Runs the measured phase from a pre-built setup template.
    ///
    /// # Errors
    ///
    /// As [`Experiment::run`].
    pub fn run_with_template(&self, template: &ExperimentTemplate) -> DbResult<ExperimentOutcome> {
        self.run_with_template_in(template, &mut ExperimentScratch::default())
    }

    /// As [`Experiment::run_with_template`], reusing the caller's scratch
    /// buffers (campaign workers keep one per thread across cells).
    ///
    /// # Errors
    ///
    /// As [`Experiment::run`].
    pub fn run_with_template_in(
        &self,
        template: &ExperimentTemplate,
        scratch: &mut ExperimentScratch,
    ) -> DbResult<ExperimentOutcome> {
        debug_assert_eq!(template.key, self.template_key(), "template/experiment mismatch");
        let clock = SimClock::shared();
        let icfg = self.config.to_instance_config(self.archive);
        let mut span_buf = std::mem::take(&mut scratch.spans);
        span_buf.clear();
        let spans: SpanLog = Arc::new(Mutex::new(span_buf));
        let jsonl: Option<Arc<Mutex<String>>> = self.capture_events.then(|| {
            let mut s = std::mem::take(&mut scratch.jsonl);
            s.clear();
            s.push_str(&template.setup_jsonl);
            Arc::new(Mutex::new(s))
        });
        // Boot from the snapshot: the clock lands on the capture instant
        // and the RNG replays the setup's fork sequence, so everything
        // downstream is byte-identical to a monolithic run.
        let mut primary = DbServer::from_snapshot(Arc::clone(&clock), &template.snapshot);
        observe(&mut primary, "PRIMARY", &spans, &jsonl);
        let mut rng = SimRng::seed_from(self.seed);
        let _load_rng = rng.fork(1);
        let schema = template.schema;
        // `standby(true)` is the paper's single-stand-by setup and maps to
        // a one-node topology; an explicit topology wins over the flag.
        let topo = if !self.topology.is_empty() {
            self.topology.clone()
        } else if self.standby {
            ReplicaTopology::single()
        } else {
            ReplicaTopology::none()
        };
        let mut rset: Option<ReplicaSet> = if topo.is_empty() {
            None
        } else {
            let mut rs = ReplicaSet::instantiate(
                &primary,
                &topo,
                self.policy,
                Arc::clone(&clock),
                DiskLayout::four_disk(),
                icfg,
            )?;
            {
                let spans = Arc::clone(&spans);
                let jsonl = jsonl.clone();
                rs.set_observer(Box::new(move |server, name| {
                    observe(server, name, &spans, &jsonl);
                }));
            }
            Some(rs)
        };

        let t0 = clock.now();
        let end = t0 + self.duration;
        let mut driver = TpccDriver::new(schema, self.driver_cfg, rng.fork(2), t0);
        let stats0 = primary.stats();

        let injector = self.fault.clone().map(FaultInjector::new);
        let mut fault_time: Option<SimTime> = None;
        let mut recovery_ready: Option<SimTime> = None;
        let mut records_applied = 0u64;
        let mut archives_processed = 0u64;
        let mut unrecoverable = false;
        let mut using_standby = false;
        let mut injected = false;
        let mut second_done = false;
        // Rolling (time, SCN) trail so time-based incomplete recovery can
        // stop a margin before the fault, as a real `UNTIL TIME` would.
        let mut scn_trail = std::mem::take(&mut scratch.trail);
        scn_trail.clear();

        loop {
            let now = clock.now();
            if now >= end {
                break;
            }
            // Inject the fault the moment its trigger time is the next
            // event on the timeline.
            if let Some(inj) = &injector {
                if !injected {
                    let tt = inj.trigger_time(t0);
                    if tt <= driver.next_ready() && tt <= end {
                        clock.advance_to(tt);
                        if let Some(rs) = rset.as_mut() {
                            let _ = rs.sync_all(&primary);
                        }
                        let mut record = inj.inject(&mut primary)?;
                        fault_time = Some(record.injected_at);
                        driver.record_outage(record.injected_at);
                        apply_margin_cutoff(&mut record, &scn_trail, inj.plan().pitr_margin);
                        injected = true;
                        if let Some(rs) = rset.as_mut() {
                            // Fail over to the replica set, whatever the
                            // fault.
                            match rs.fail_over(Some(&mut primary)) {
                                Ok(Some(ready)) => {
                                    using_standby = true;
                                    recovery_ready = Some(ready);
                                    records_applied = rs
                                        .promoted()
                                        .and_then(|k| rs.node(k))
                                        .map_or(0, |sb| sb.records_applied);
                                    // The terminals reconnect to a new
                                    // node: their primary session ids must
                                    // not leak into the stand-by's space.
                                    driver.sever_all(ready);
                                }
                                // Quorum denied or promotion failed: the
                                // service stays down.
                                Ok(None) | Err(_) => unrecoverable = true,
                            }
                        } else {
                            match inj.recover(&mut primary, &record) {
                                Ok(out) => {
                                    recovery_ready = Some(out.recovery_finished_at);
                                    records_applied = out.records_applied;
                                    archives_processed = out.archives_processed;
                                }
                                Err(_) => unrecoverable = true,
                            }
                        }
                        continue;
                    }
                }
            }
            // The double-fault scenario: the just-promoted node dies too,
            // and the controller must promote a second survivor.
            if let (Some(secs), false, true) = (self.second_fault_secs, second_done, using_standby)
            {
                let at = t0 + SimDuration::from_secs(secs);
                if at <= end && (at <= now || at <= driver.next_ready()) {
                    if at > now {
                        clock.advance_to(at);
                    }
                    second_done = true;
                    if let Some(rs) = rset.as_mut() {
                        if let Ok(killed) = rs.kill_promoted() {
                            driver.record_outage(killed);
                            match rs.fail_over(None) {
                                Ok(Some(ready)) => driver.sever_all(ready),
                                Ok(None) | Err(_) => unrecoverable = true,
                            }
                        }
                    }
                    continue;
                }
            }
            if driver.next_ready() >= end {
                clock.advance_to(end);
                break;
            }
            if using_standby {
                if let Some(active) = rset.as_mut().and_then(ReplicaSet::active_mut) {
                    driver.step(active);
                }
                if let Some(rs) = rset.as_mut() {
                    let _ = rs.sync_followers();
                }
            } else {
                driver.step(&mut primary);
                if !injected {
                    match scn_trail.last() {
                        Some((_, last)) if *last == primary.current_scn() => {}
                        _ => scn_trail.push((clock.now(), primary.current_scn())),
                    }
                }
                if let Some(rs) = rset.as_mut() {
                    let _ = rs.sync_all(&primary);
                }
            }
        }

        // ---- Evaluate the measures -----------------------------------
        // Drain in-flight terminals first: an uncommitted transaction or a
        // parked lock wait must not shadow the lost-order audit.
        if using_standby {
            if let Some(active) = rset.as_mut().and_then(ReplicaSet::active_mut) {
                driver.quiesce(active);
            }
        } else {
            driver.quiesce(&mut primary);
        }
        let active: &DbServer = match rset
            .as_ref()
            .filter(|_| using_standby)
            .and_then(|rs| rs.promoted().and_then(|k| rs.node(k)))
        {
            Some(sb) => sb.server(),
            None => &primary,
        };
        let warm_up = SimDuration::from_secs(60).min(self.duration / 10);
        let perf_end = fault_time.unwrap_or(end).min(end);
        let tpmc = driver.tpmc(t0 + warm_up, perf_end);

        let restored_at = recovery_ready.and_then(|ready| driver.first_success_after(ready));
        let (recovery_time_secs, recovered_within_run) = match (fault_time, recovery_ready) {
            (Some(ft), Some(_)) => match restored_at {
                Some(restored) => (Some(restored.saturating_since(ft).as_secs_f64()), true),
                None => (None, false),
            },
            (Some(_), None) => (None, false),
            (None, _) => (None, true),
        };

        // Attribute the recovery window [fault, procedure end] to the
        // phase spans the engine recorded; whatever no span claims is
        // `other`, and the tail until the first client commit is
        // `service_resume`. Spans wrap disjoint clock advances, so the
        // total reproduces `recovery_time_secs` exactly.
        let breakdown = match (fault_time, recovery_ready, restored_at) {
            (Some(ft), Some(ready), Some(restored)) => {
                let mut b = RecoveryBreakdown::default();
                for (span_end, phase, span_start) in spans.lock().unwrap().iter() {
                    let from = (*span_start).max(ft);
                    let to = (*span_end).min(ready);
                    if to <= from {
                        continue;
                    }
                    let us = to.saturating_since(from).as_micros();
                    match phase {
                        RecoveryPhase::Detection => b.detection_us += us,
                        RecoveryPhase::InstanceStartup => b.instance_startup_us += us,
                        RecoveryPhase::MediaRestore => b.media_restore_us += us,
                        RecoveryPhase::RedoScan => b.redo_scan_us += us,
                        RecoveryPhase::RedoApply => b.redo_apply_us += us,
                        RecoveryPhase::TxnRollback => b.txn_rollback_us += us,
                        RecoveryPhase::StandbyActivation => b.standby_activation_us += us,
                    }
                }
                let window = ready.saturating_since(ft).as_micros();
                let attributed = b.total_us();
                b.other_us = window.saturating_sub(attributed);
                b.service_resume_us = restored.saturating_since(ready).as_micros();
                Some(b)
            }
            _ => None,
        };
        let timeline = driver.availability_timeline(t0, end);

        let (lost, violations) = if active.is_open() {
            let lost = driver.audit_lost_orders(active).unwrap_or(0);
            let violations = check_consistency(active, &schema)
                .map(|r| r.violation_count())
                .unwrap_or(u64::MAX);
            (lost, violations)
        } else {
            (0, 0)
        };

        let window = primary.stats().since(&stats0);
        let measures = Measures {
            tpmc,
            recovery_time_secs,
            recovered_within_run,
            lost_transactions: lost,
            integrity_violations: violations,
            checkpoints: window.log_switches,
            log_switches: window.log_switches,
            redo_mb: window.redo_bytes as f64 / (1024.0 * 1024.0),
            client_errors: driver.error_count(),
            total_commits: window.commits,
        };
        let events_jsonl = jsonl.as_ref().map(|buf| std::mem::take(&mut *buf.lock().unwrap()));
        // Hand the scratch allocations back to the worker for the next cell.
        scratch.spans = std::mem::take(&mut *spans.lock().unwrap());
        scratch.trail = scn_trail;
        Ok(ExperimentOutcome {
            config_name: self.config.name.clone(),
            archive: self.archive,
            standby: self.standby || !topo.is_empty(),
            topology: topo.name().to_string(),
            policy: self.policy.name().to_string(),
            failovers: rset.as_ref().map_or(0, ReplicaSet::failovers),
            fault: self.fault.as_ref().map(|p| p.fault),
            trigger_secs: self.fault.as_ref().map(|p| p.trigger_after.as_micros() / 1_000_000),
            terminals: self.driver_cfg.terminals,
            lock_waits: window.lock_waits,
            deadlocks: window.deadlocks,
            measures,
            breakdown,
            timeline,
            events_jsonl,
            recovery_records_applied: records_applied,
            recovery_archives: archives_processed,
            unrecoverable,
        })
    }
}

impl ExperimentBuilder {
    /// Injects `fault` at `trigger_after_secs` after workload start.
    pub fn fault(mut self, fault: FaultType, trigger_after_secs: u64) -> Self {
        self.exp.fault = Some(FaultPlan::new(fault, trigger_after_secs));
        self
    }

    /// Injects a fully customized fault plan.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.exp.fault = Some(plan);
        self
    }

    /// Enables or disables ARCHIVELOG mode (default: on).
    pub fn archive_logs(mut self, on: bool) -> Self {
        self.exp.archive = on;
        self
    }

    /// Adds a stand-by database that takes over on the fault.
    pub fn standby(mut self, on: bool) -> Self {
        self.exp.standby = on;
        self
    }

    /// Puts a replica set of shape `topo` behind the primary; overrides
    /// [`standby`](ExperimentBuilder::standby).
    pub fn topology(mut self, topo: ReplicaTopology) -> Self {
        self.exp.topology = topo;
        self
    }

    /// Selects who may decide the primary is dead, and how.
    pub fn failover_policy(mut self, policy: FailoverPolicy) -> Self {
        self.exp.policy = policy;
        self
    }

    /// Kills the promoted replica `secs` after workload start (the
    /// double-fault scenario). Only fires after a first fault has already
    /// failed the service over to the replica set.
    pub fn second_fault_secs(mut self, secs: u64) -> Self {
        self.exp.second_fault_secs = Some(secs);
        self
    }

    /// Experiment duration in simulated seconds (paper: 1 200).
    pub fn duration_secs(mut self, secs: u64) -> Self {
        self.exp.duration = SimDuration::from_secs(secs);
        self
    }

    /// RNG seed for the whole experiment.
    pub fn seed(mut self, seed: u64) -> Self {
        self.exp.seed = seed;
        self
    }

    /// TPC-C scale (default [`TpccScale::mini`]).
    pub fn scale(mut self, scale: TpccScale) -> Self {
        self.exp.scale = scale;
        self
    }

    /// Terminal-driver configuration.
    pub fn driver(mut self, cfg: DriverConfig) -> Self {
        self.exp.driver_cfg = cfg;
        self
    }

    /// Number of emulated terminals (a campaign dimension; default 12).
    /// Shorthand for adjusting only that field of the driver config.
    pub fn terminals(mut self, n: usize) -> Self {
        self.exp.driver_cfg.terminals = n;
        self
    }

    /// Storage provisioning for the TPC-C tablespace.
    pub fn storage(mut self, datafiles: u32, blocks_per_file: u64) -> Self {
        self.exp.datafiles = datafiles;
        self.exp.blocks_per_file = blocks_per_file;
        self
    }

    /// Captures the full engine event stream (both servers) into
    /// [`ExperimentOutcome::events_jsonl`] for export. Off by default —
    /// long runs generate tens of thousands of events.
    pub fn capture_events(mut self, on: bool) -> Self {
        self.exp.capture_events = on;
        self
    }

    /// Disk layout for the primary server (default: the paper's four-disk
    /// layout). [`DiskLayout::single_disk`] reproduces the "incorrect
    /// distribution of files through disks" operator-fault class as a
    /// standing misconfiguration.
    pub fn layout(mut self, layout: DiskLayout) -> Self {
        self.exp.layout = layout;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Experiment {
        self.exp
    }

    /// Builds and runs in one call.
    ///
    /// # Errors
    ///
    /// See [`Experiment::run`].
    pub fn run(self) -> DbResult<ExperimentOutcome> {
        self.exp.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(config: &str) -> ExperimentBuilder {
        Experiment::builder(RecoveryConfig::named(config).unwrap())
            .duration_secs(180)
            .scale(TpccScale::tiny())
            .seed(7)
    }

    #[test]
    fn fault_free_run_measures_throughput() {
        let out = quick("F10G3T5").run().unwrap();
        assert!(out.measures.tpmc > 0.0, "tpmC must be positive, got {}", out.measures.tpmc);
        assert!(out.measures.recovery_time_secs.is_none());
        assert_eq!(out.measures.integrity_violations, 0);
        assert_eq!(out.measures.lost_transactions, 0);
        assert_eq!(out.measures.client_errors, 0);
        assert!(!out.unrecoverable);
    }

    #[test]
    fn shutdown_abort_recovers_completely() {
        let out = quick("F10G3T5").fault(FaultType::ShutdownAbort, 60).run().unwrap();
        let rt = out.measures.recovery_time_secs.expect("service must return");
        assert!(rt > 5.0, "instance restart takes at least the startup cost, got {rt}");
        assert!(rt < 120.0, "crash recovery is fast, got {rt}");
        assert_eq!(out.measures.lost_transactions, 0, "complete recovery");
        assert_eq!(out.measures.integrity_violations, 0);
        assert!(rt > 10.0, "recovery time includes detection + instance startup, got {rt}");
    }

    #[test]
    fn drop_table_loses_the_tail_but_stays_consistent() {
        let out = quick("F10G3T5").duration_secs(600).fault(FaultType::DeleteUsersObject, 60).run().unwrap();
        assert!(out.measures.recovery_time_secs.is_some(), "PITR must complete in 540 s");
        assert!(out.measures.integrity_violations == 0);
        // Detection takes a second; a few transactions commit between the
        // stop SCN and the service stopping.
        assert!(out.measures.lost_transactions > 0, "incomplete recovery loses the tail");
        assert!(out.recovery_records_applied > 0);
    }

    #[test]
    fn standby_failover_bounds_recovery_time() {
        let out = quick("F1G3T1")
            .duration_secs(420)
            .standby(true)
            .fault(FaultType::ShutdownAbort, 120)
            .run()
            .unwrap();
        assert!(out.standby);
        let rt = out.measures.recovery_time_secs.expect("failover completes");
        assert!(rt < 90.0, "standby activation is fast, got {rt}");
        assert_eq!(out.measures.integrity_violations, 0);
    }

    #[test]
    fn noarchivelog_cannot_recover_deleted_datafile_after_reuse() {
        let out = quick("F1G3T1")
            .archive_logs(false)
            .duration_secs(300)
            .fault(FaultType::DeleteDatafile, 120)
            .run()
            .unwrap();
        assert!(out.unrecoverable, "1 MB logs cycle well before 120 s; redo is gone");
        assert!(!out.measures.recovered_within_run);
    }

    #[test]
    fn same_seed_reproduces_the_outcome_exactly() {
        // Regression guard for the hot-path work: buffer reuse, memoized
        // sizes and fixed-seed hashing must not leak any run-to-run state
        // into results. Two runs of the same experiment must agree on
        // every field, not just roughly.
        let run = || {
            quick("F10G3T5")
                .fault(FaultType::ShutdownAbort, 60)
                .capture_events(true)
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must give a byte-identical outcome");
        let stream = a.events_jsonl.as_deref().expect("capture was requested");
        assert!(!stream.is_empty() && stream.ends_with('\n'));
        assert_eq!(
            a.events_jsonl, b.events_jsonl,
            "same seed must give a byte-identical event stream"
        );
    }

    #[test]
    fn eight_contended_terminals_wait_deadlock_and_stay_consistent() {
        // The acceptance cell for the session API: eight terminals on the
        // tiny two-district database with near-zero think times, so every
        // district and stock row is fought over. The run must exhibit real
        // lock waits *and* at least one broken deadlock, keep the TPC-C
        // consistency conditions intact, and stay byte-deterministic.
        let contended = DriverConfig {
            terminals: 8,
            mean_think: SimDuration::from_micros(200),
            mean_keying: SimDuration::from_micros(50),
            retry_interval: SimDuration::from_millis(100),
        };
        let run = || {
            quick("F10G3T5")
                .duration_secs(1)
                .driver(contended)
                .capture_events(true)
                .run()
                .unwrap()
        };
        let a = run();
        assert_eq!(a.terminals, 8);
        assert_eq!(a.measures.integrity_violations, 0, "interleaving must not corrupt data");
        assert_eq!(a.measures.client_errors, 0, "deadlock aborts are replayed, not surfaced");
        assert!(a.lock_waits >= 1, "contended run saw no lock waits");
        assert!(a.deadlocks >= 1, "contended run broke no deadlocks");
        let stream = a.events_jsonl.as_deref().expect("capture was requested");
        assert!(stream.contains("lock_wait"), "event log records the waits");
        assert!(stream.contains("deadlock_victim"), "event log records the victim");
        let b = run();
        assert_eq!(a, b, "same seed, same terminals: byte-identical outcome");
    }

    #[test]
    fn breakdown_phases_sum_to_the_recovery_time() {
        let out = quick("F10G3T5").fault(FaultType::ShutdownAbort, 60).run().unwrap();
        let b = out.breakdown.expect("recovered runs carry a breakdown");
        let rt_us = (out.measures.recovery_time_secs.unwrap() * 1e6).round() as u64;
        assert!(
            b.total_us().abs_diff(rt_us) <= 1,
            "breakdown {}µs vs recovery time {}µs",
            b.total_us(),
            rt_us
        );
        assert!(b.detection_us > 0, "operator detection is never instant");
        assert!(b.instance_startup_us > 0, "a crash restart pays the startup cost");
        assert!(b.redo_apply_us > 0, "crash recovery replays redo");
        assert_eq!(b.standby_activation_us, 0, "no stand-by in this run");
    }

    #[test]
    fn fault_free_runs_have_no_breakdown_but_a_full_timeline() {
        let out = quick("F10G3T5").run().unwrap();
        assert!(out.breakdown.is_none());
        assert!(out.events_jsonl.is_none(), "capture defaults to off");
        assert!(out.timeline.total() > 0, "a healthy run commits in every bucket");
        assert!(out.timeline.first_error_us.is_none());
        assert!(out.timeline.service_return_us.is_none());
    }
}
