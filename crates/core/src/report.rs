//! Fixed-width table rendering for the table/figure regenerators.

use std::fmt::Write as _;

/// A simple fixed-width text table.
///
/// ```
/// use recobench_core::report::Table;
///
/// let mut t = Table::new(vec!["Config", "tpmC"]);
/// t.row(vec!["F40G3T10".into(), "912".into()]);
/// let s = t.render();
/// assert!(s.contains("F40G3T10"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new(), title: None }
    }

    /// Sets a title line printed above the table.
    pub fn title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "{t}");
        }
        let sep: String = widths.iter().map(|w| format!("+{}", "-".repeat(w + 2))).collect::<String>() + "+";
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                let _ = write!(line, "| {cell:>w$} ", w = w);
            }
            line + "|"
        };
        let _ = writeln!(out, "{sep}");
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        let _ = writeln!(out, "{sep}");
        out
    }
}

/// Lays out recovery-time breakdowns — one labelled cell per row, one
/// column per phase, all in seconds — for the `recovery_breakdown`
/// regenerator and anything else that wants Table 5 decomposed.
pub fn breakdown_table(
    title: &str,
    rows: &[(String, crate::measures::RecoveryBreakdown)],
) -> Table {
    let mut t = Table::new(vec![
        "Cell", "detect", "startup", "restore", "scan", "apply", "rollback", "standby",
        "other", "resume", "total",
    ])
    .title(title);
    let secs = |us: u64| format!("{:.1}", us as f64 / 1_000_000.0);
    for (label, b) in rows {
        t.row(vec![
            label.clone(),
            secs(b.detection_us),
            secs(b.instance_startup_us),
            secs(b.media_restore_us),
            secs(b.redo_scan_us),
            secs(b.redo_apply_us),
            secs(b.txn_rollback_us),
            secs(b.standby_activation_us),
            secs(b.other_us),
            secs(b.service_resume_us),
            secs(b.total_us()),
        ]);
    }
    t
}

/// Renders a crude horizontal bar for figure-style output: `value` scaled
/// against `max` into `width` characters.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.clamp(1, width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]).title("Demo");
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4444".into()]);
        let s = t.render();
        assert!(s.starts_with("Demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        // All body lines have the same width.
        let widths: std::collections::BTreeSet<usize> =
            lines[1..].iter().map(|l| l.len()).collect();
        assert_eq!(widths.len(), 1, "unaligned table:\n{s}");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x".into()]);
        let s = t.render();
        assert!(s.contains("| x |"));
    }

    #[test]
    fn breakdown_table_has_a_column_per_phase() {
        let b = crate::measures::RecoveryBreakdown {
            detection_us: 1_000_000,
            redo_apply_us: 2_500_000,
            service_resume_us: 500_000,
            ..Default::default()
        };
        let t = breakdown_table("Demo", &[("F10G3T5 restart".to_string(), b)]);
        let s = t.render();
        assert!(s.contains("F10G3T5 restart"));
        assert!(s.contains("2.5"), "apply seconds rendered:\n{s}");
        assert!(s.contains("4.0"), "total sums the phases:\n{s}");
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(5.0, 10.0, 10).len(), 5);
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10).len(), 10, "clamped at width");
        assert_eq!(bar(0.01, 10.0, 10).len(), 1, "non-zero values show at least one tick");
    }
}
