//! Double-fault scenarios: recovery-mechanism sabotage followed by a
//! storage fault.
//!
//! The paper excludes the "recovery mechanisms administration" fault class
//! from its experiments because "after a first fault affecting the
//! recovery mechanisms we would need a second fault of other type to
//! activate the recovery and reveal the effects of the first" (§4). This
//! module implements exactly that two-step experiment: a silent *sabotage*
//! of the recovery apparatus, then one of the ordinary injected faults —
//! whose recovery now fails or degrades, exposing the first mistake.

use recobench_engine::{DbResult, DbServer};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::injector::{FaultInjector, FaultOutcome, FaultPlan};

/// A recovery-mechanism-administration mistake (paper Table 2, last
/// class). Silent on its own: performance and service are unaffected
/// until recovery is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sabotage {
    /// `rm /arch/*` — "delete a archive log file" (all of them, the worst
    /// case).
    DeleteArchiveLogs,
    /// Backup pieces reclaimed as "unused space" — "backups missing to
    /// allow recovery".
    DiscardBackups,
    /// Both at once (an operator "cleaning up" the tertiary storage).
    DeleteArchivesAndBackups,
}

impl Sabotage {
    /// All sabotage variants.
    pub fn all() -> [Sabotage; 3] {
        [Sabotage::DeleteArchiveLogs, Sabotage::DiscardBackups, Sabotage::DeleteArchivesAndBackups]
    }

    /// Performs the sabotage. Returns how many files were destroyed.
    ///
    /// # Errors
    ///
    /// Never fails on a healthy server; storage errors propagate.
    pub fn perform(self, server: &mut DbServer) -> DbResult<u64> {
        let mut destroyed = 0u64;
        if matches!(self, Sabotage::DeleteArchiveLogs | Sabotage::DeleteArchivesAndBackups) {
            for path in server.archive_paths() {
                server.os_delete_file(&path)?;
                destroyed += 1;
            }
        }
        if matches!(self, Sabotage::DiscardBackups | Sabotage::DeleteArchivesAndBackups)
            && server.backup().is_some()
        {
            server.discard_backup();
            destroyed += 1;
        }
        Ok(destroyed)
    }
}

impl fmt::Display for Sabotage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sabotage::DeleteArchiveLogs => "delete archive logs",
            Sabotage::DiscardBackups => "discard backups",
            Sabotage::DeleteArchivesAndBackups => "delete archives + backups",
        })
    }
}

/// A two-fault scenario: sabotage now, visible fault later.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoubleFaultPlan {
    /// The silent first fault.
    pub sabotage: Sabotage,
    /// The second, visible fault (with its own trigger and recovery
    /// procedure).
    pub fault: FaultPlan,
}

/// What a double-fault scenario produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoubleFaultOutcome {
    /// Files destroyed by the sabotage.
    pub destroyed: u64,
    /// The second fault's recovery outcome, or `None` if recovery failed —
    /// which is precisely the first fault becoming visible.
    pub recovery: Option<FaultOutcome>,
    /// The recovery error message when recovery failed.
    pub recovery_error: Option<String>,
}

impl DoubleFaultPlan {
    /// Runs the scenario against `server`: sabotage immediately, inject
    /// the second fault, attempt its recovery.
    ///
    /// # Errors
    ///
    /// Fails only if the *injection* itself is impossible (mis-planned
    /// experiment); a failed recovery is the expected result, not an
    /// error.
    pub fn execute(&self, server: &mut DbServer) -> DbResult<DoubleFaultOutcome> {
        let destroyed = self.sabotage.perform(server)?;
        let injector = FaultInjector::new(self.fault.clone());
        let record = injector.inject(server)?;
        match injector.recover(server, &record) {
            Ok(outcome) => {
                Ok(DoubleFaultOutcome { destroyed, recovery: Some(outcome), recovery_error: None })
            }
            Err(e) => Ok(DoubleFaultOutcome {
                destroyed,
                recovery: None,
                recovery_error: Some(e.to_string()),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::FaultType;
    use recobench_engine::catalog::IndexDef;
    use recobench_engine::row::{Row, Value};
    use recobench_engine::{DiskLayout, InstanceConfig};
    use recobench_sim::SimClock;

    fn server_with_archives() -> DbServer {
        let cfg = InstanceConfig::builder()
            .redo_file_bytes(32 * 1024)
            .redo_groups(3)
            .checkpoint_timeout_secs(60)
            .archive_mode(true)
            .cache_blocks(64)
            .build();
        let mut srv =
            DbServer::on_fresh_disks("DBL", SimClock::shared(), DiskLayout::four_disk(), cfg);
        srv.create_database().unwrap();
        srv.create_user("u").unwrap();
        srv.create_tablespace("TPCC", 2, 512).unwrap();
        srv.create_table(
            "STOCK",
            "u",
            "TPCC",
            vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }],
        )
        .unwrap();
        let t = srv.table_id("STOCK").unwrap();
        let s = srv.connect().unwrap();
        for i in 0..20 {
            srv.insert(s, t, Row::new(vec![Value::U64(i), Value::from("pre-backup")])).unwrap();
            srv.commit(s).unwrap();
        }
        srv.take_cold_backup().unwrap();
        let s = srv.connect().unwrap();
        for i in 20..160 {
            srv.insert(s, t, Row::new(vec![Value::U64(i), Value::from("post-backup-payload")]))
                .unwrap();
            srv.commit(s).unwrap();
        }
        srv.disconnect(s);
        assert!(srv.stats().archives_created > 0, "archives exist to sabotage");
        srv
    }

    #[test]
    fn sabotage_alone_is_silent() {
        let mut srv = server_with_archives();
        let destroyed = Sabotage::DeleteArchivesAndBackups.perform(&mut srv).unwrap();
        assert!(destroyed > 1);
        // Service is untouched: the first fault is invisible.
        let t = srv.table_id("STOCK").unwrap();
        let s = srv.connect().unwrap();
        srv.insert(s, t, Row::new(vec![Value::U64(999), Value::from("still fine")])).unwrap();
        srv.commit(s).unwrap();
        srv.disconnect(s);
        assert!(srv.is_open());
    }

    #[test]
    fn archive_sabotage_turns_media_recovery_unrecoverable() {
        // Without sabotage the same second fault recovers fine...
        let mut healthy = server_with_archives();
        let plan = DoubleFaultPlan {
            sabotage: Sabotage::DeleteArchiveLogs,
            fault: FaultPlan::new(FaultType::DeleteDatafile, 0),
        };
        let control = FaultInjector::new(plan.fault.clone());
        let rec = control.inject(&mut healthy).unwrap();
        assert!(control.recover(&mut healthy, &rec).is_ok(), "baseline must recover");

        // ...but with the archives gone it cannot.
        let mut sabotaged = server_with_archives();
        let outcome = plan.execute(&mut sabotaged).unwrap();
        assert!(outcome.destroyed > 0);
        assert!(outcome.recovery.is_none(), "the first fault must surface here");
        let err = outcome.recovery_error.unwrap();
        assert!(
            err.contains("unrecoverable") || err.contains("deleted"),
            "error must name the missing redo: {err}"
        );
    }

    #[test]
    fn backup_sabotage_blocks_incomplete_recovery() {
        let mut srv = server_with_archives();
        let plan = DoubleFaultPlan {
            sabotage: Sabotage::DiscardBackups,
            fault: FaultPlan::new(FaultType::DeleteUsersObject, 0),
        };
        let outcome = plan.execute(&mut srv).unwrap();
        assert!(outcome.recovery.is_none(), "point-in-time recovery needs the backup");
    }

    #[test]
    fn shutdown_abort_survives_any_sabotage() {
        // Crash recovery needs only the online logs: the sabotage stays
        // invisible even through the second fault.
        for sabotage in Sabotage::all() {
            let mut srv = server_with_archives();
            let plan = DoubleFaultPlan {
                sabotage,
                fault: FaultPlan::new(FaultType::ShutdownAbort, 0),
            };
            let outcome = plan.execute(&mut srv).unwrap();
            assert!(
                outcome.recovery.is_some(),
                "{sabotage}: crash recovery must still work (online redo only)"
            );
            assert!(srv.is_open());
        }
    }
}
