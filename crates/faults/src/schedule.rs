//! Randomized multi-fault schedules for the torture harness.
//!
//! The paper's experiments inject exactly one fault per run at a fixed
//! trigger time. The torture harness generalizes that to a *schedule*:
//! any number of faults at arbitrary times within a run, drawn from the
//! six operator fault types plus a raw instance kill (crash without the
//! clean `SHUTDOWN ABORT` bookkeeping path). Schedules serialize to a
//! small hand-rolled JSON shape so minimized reproducers can be committed
//! as a corpus and replayed byte-for-byte:
//!
//! ```json
//! {"seed":7,"duration_secs":300,"faults":[{"fault":"shutdown_abort","at_secs":42}]}
//! ```

use crate::taxonomy::{FaultType, ReplicaFaultType, StorageFaultType};
use recobench_sim::SimRng;

/// What to inject: one of the paper's six operator faults, a raw
/// instance kill, a storage-hardware fault armed on the vfs, or a
/// replica-set fault aimed at the stand-by apparatus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TortureFaultKind {
    /// One of the six operator fault types of the paper's experiments,
    /// injected through [`FaultInjector`](crate::FaultInjector) with its
    /// standard recovery procedure.
    Operator(FaultType),
    /// The instance dies on the spot (power loss / `kill -9` of every
    /// background process). Recovery is a plain restart with crash
    /// recovery — no DBA diagnosis beyond noticing the instance is gone.
    InstanceKill,
    /// A storage-hardware fault armed on the simulated filesystem
    /// (`recobench_vfs::FaultArm`): torn write, partial append, bit-rot,
    /// disk-full, or slow I/O. Recovery is detection (checksum scan,
    /// write error, or latency) plus the appropriate media/crash
    /// procedure.
    Storage(StorageFaultType),
    /// A replica-set fault (engine `ReplicaSet`): kill the primary or the
    /// newly promoted node, corrupt a shipped archive copy, or partition
    /// a stand-by. Recovery is failover/resync rather than restore.
    Replica(ReplicaFaultType),
}

impl TortureFaultKind {
    /// The original seven kinds, in a fixed order (the six operator
    /// faults in the paper's order, then the kill). Kept at exactly seven
    /// entries so schedules drawn from historical seeds replay unchanged;
    /// the storage kinds live in [`TortureFaultKind::all_extended`].
    pub fn all() -> [TortureFaultKind; 7] {
        [
            TortureFaultKind::Operator(FaultType::ShutdownAbort),
            TortureFaultKind::Operator(FaultType::DeleteDatafile),
            TortureFaultKind::Operator(FaultType::DeleteTablespace),
            TortureFaultKind::Operator(FaultType::SetDatafileOffline),
            TortureFaultKind::Operator(FaultType::SetTablespaceOffline),
            TortureFaultKind::Operator(FaultType::DeleteUsersObject),
            TortureFaultKind::InstanceKill,
        ]
    }

    /// Every kind including the five storage-hardware faults and the four
    /// replica-set faults, appended in that order so the slice layout
    /// stays `[legacy 7][storage 5][replica 4]` for corpus stability.
    pub fn all_extended() -> [TortureFaultKind; 16] {
        [
            TortureFaultKind::Operator(FaultType::ShutdownAbort),
            TortureFaultKind::Operator(FaultType::DeleteDatafile),
            TortureFaultKind::Operator(FaultType::DeleteTablespace),
            TortureFaultKind::Operator(FaultType::SetDatafileOffline),
            TortureFaultKind::Operator(FaultType::SetTablespaceOffline),
            TortureFaultKind::Operator(FaultType::DeleteUsersObject),
            TortureFaultKind::InstanceKill,
            TortureFaultKind::Storage(StorageFaultType::TornWrite),
            TortureFaultKind::Storage(StorageFaultType::PartialAppend),
            TortureFaultKind::Storage(StorageFaultType::BitRot),
            TortureFaultKind::Storage(StorageFaultType::DiskFull),
            TortureFaultKind::Storage(StorageFaultType::SlowIo),
            TortureFaultKind::Replica(ReplicaFaultType::KillPrimary),
            TortureFaultKind::Replica(ReplicaFaultType::KillPromoted),
            TortureFaultKind::Replica(ReplicaFaultType::CorruptShippedArchive),
            TortureFaultKind::Replica(ReplicaFaultType::PartitionReplica),
        ]
    }

    /// The five storage-hardware kinds (the `--faultload storage` pool).
    pub fn storage() -> [TortureFaultKind; 5] {
        [
            TortureFaultKind::Storage(StorageFaultType::TornWrite),
            TortureFaultKind::Storage(StorageFaultType::PartialAppend),
            TortureFaultKind::Storage(StorageFaultType::BitRot),
            TortureFaultKind::Storage(StorageFaultType::DiskFull),
            TortureFaultKind::Storage(StorageFaultType::SlowIo),
        ]
    }

    /// The four replica-set kinds (the `--faultload replica` pool).
    pub fn replica() -> [TortureFaultKind; 4] {
        [
            TortureFaultKind::Replica(ReplicaFaultType::KillPrimary),
            TortureFaultKind::Replica(ReplicaFaultType::KillPromoted),
            TortureFaultKind::Replica(ReplicaFaultType::CorruptShippedArchive),
            TortureFaultKind::Replica(ReplicaFaultType::PartitionReplica),
        ]
    }

    /// Stable snake_case name used in schedule JSON.
    pub fn name(self) -> &'static str {
        match self {
            TortureFaultKind::Operator(FaultType::ShutdownAbort) => "shutdown_abort",
            TortureFaultKind::Operator(FaultType::DeleteDatafile) => "delete_datafile",
            TortureFaultKind::Operator(FaultType::DeleteTablespace) => "delete_tablespace",
            TortureFaultKind::Operator(FaultType::SetDatafileOffline) => "set_datafile_offline",
            TortureFaultKind::Operator(FaultType::SetTablespaceOffline) => {
                "set_tablespace_offline"
            }
            TortureFaultKind::Operator(FaultType::DeleteUsersObject) => "delete_users_object",
            TortureFaultKind::InstanceKill => "instance_kill",
            TortureFaultKind::Storage(s) => s.name(),
            TortureFaultKind::Replica(r) => r.name(),
        }
    }

    /// Inverse of [`TortureFaultKind::name`], over the extended set.
    pub fn from_name(name: &str) -> Option<TortureFaultKind> {
        TortureFaultKind::all_extended().into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for TortureFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fault at one moment of a torture run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// What to inject.
    pub kind: TortureFaultKind,
    /// Seconds after the measurement window opens. Faults may land while
    /// the previous fault's recovery is still running; the runner injects
    /// such overtaken faults the moment recovery finishes (the
    /// fault-during-recovery case).
    pub at_secs: u64,
}

/// A complete torture schedule: a workload seed, a run length, and the
/// faults to inject. Equality is structural, so shrinking can detect
/// fixed points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Seed for the TPC-C workload (and anything else the runner
    /// randomizes). Same seed + same schedule ⇒ same run, byte for byte.
    pub seed: u64,
    /// Length of the measurement window in simulated seconds.
    pub duration_secs: u64,
    /// The faults, in any order; the runner injects them sorted by time.
    pub faults: Vec<ScheduledFault>,
}

impl FaultSchedule {
    /// A schedule with no faults — the baseline the oracle must always
    /// pass.
    pub fn quiet(seed: u64, duration_secs: u64) -> FaultSchedule {
        FaultSchedule { seed, duration_secs, faults: Vec::new() }
    }

    /// Draws a random schedule: `n_faults` faults of random kinds at
    /// random times in `[min_at, duration_secs)`. Deterministic in the
    /// RNG; the schedule's own `seed` is drawn from the same stream.
    ///
    /// `min_at` keeps faults out of the first seconds so the driver has
    /// ramped up before the first injection (the paper triggers at
    /// steady state for the same reason).
    pub fn random(rng: &mut SimRng, n_faults: usize, duration_secs: u64, min_at: u64) -> FaultSchedule {
        Self::random_from(rng, &TortureFaultKind::all(), n_faults, duration_secs, min_at)
    }

    /// Like [`FaultSchedule::random`] but drawing only from the five
    /// storage-hardware fault kinds — the `--faultload storage` pool.
    pub fn random_storage(
        rng: &mut SimRng,
        n_faults: usize,
        duration_secs: u64,
        min_at: u64,
    ) -> FaultSchedule {
        Self::random_from(rng, &TortureFaultKind::storage(), n_faults, duration_secs, min_at)
    }

    /// Like [`FaultSchedule::random`] but drawing only from the four
    /// replica-set fault kinds — the `--faultload replica` pool.
    pub fn random_replica(
        rng: &mut SimRng,
        n_faults: usize,
        duration_secs: u64,
        min_at: u64,
    ) -> FaultSchedule {
        Self::random_from(rng, &TortureFaultKind::replica(), n_faults, duration_secs, min_at)
    }

    /// Whether any scheduled fault targets the replica set — the torture
    /// runner provisions stand-bys only when one does.
    pub fn has_replica_faults(&self) -> bool {
        self.faults.iter().any(|f| matches!(f.kind, TortureFaultKind::Replica(_)))
    }

    /// Draws a random schedule from an explicit kind pool. The draw order
    /// (kind, then time, per fault; schedule seed last) is part of the
    /// corpus contract — changing it invalidates committed seeds.
    pub fn random_from(
        rng: &mut SimRng,
        kinds: &[TortureFaultKind],
        n_faults: usize,
        duration_secs: u64,
        min_at: u64,
    ) -> FaultSchedule {
        let span = duration_secs.saturating_sub(min_at).max(1);
        let faults = (0..n_faults)
            .map(|_| ScheduledFault {
                kind: kinds[rng.gen_range(0..kinds.len() as u64) as usize],
                at_secs: min_at + rng.gen_range(0..span),
            })
            .collect();
        FaultSchedule { seed: rng.next_u64(), duration_secs, faults }
    }

    /// The faults sorted by injection time (ties keep schedule order).
    pub fn sorted_faults(&self) -> Vec<ScheduledFault> {
        let mut faults = self.faults.clone();
        faults.sort_by_key(|f| f.at_secs);
        faults
    }

    /// Serializes to the canonical JSON shape (stable field order, no
    /// whitespace) so minimized schedules diff cleanly in a corpus.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.faults.len() * 48);
        out.push_str(&format!(
            "{{\"seed\":{},\"duration_secs\":{},\"faults\":[",
            self.seed, self.duration_secs
        ));
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"fault\":\"{}\",\"at_secs\":{}}}",
                f.kind.name(),
                f.at_secs
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parses the JSON shape produced by [`FaultSchedule::to_json`].
    /// Tolerates whitespace and any field order; rejects anything else
    /// with a description of what went wrong.
    pub fn from_json(text: &str) -> Result<FaultSchedule, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let schedule = p.schedule()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(schedule)
    }
}

/// A minimal recursive-descent parser for exactly the schedule shape —
/// the repo's no-external-deps rule means no serde_json, and the shape is
/// small enough that a bespoke parser is clearer than a generic one.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, ch: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", ch as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                self.pos += 1;
                return Ok(s.to_string());
            }
            if b == b'\\' {
                return Err(format!("escape sequences unsupported at byte {}", self.pos));
            }
            self.pos += 1;
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected number at byte {}", start));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn fault(&mut self) -> Result<ScheduledFault, String> {
        self.expect(b'{')?;
        let mut kind = None;
        let mut at_secs = None;
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "fault" => {
                    let name = self.string()?;
                    kind = Some(
                        TortureFaultKind::from_name(&name)
                            .ok_or_else(|| format!("unknown fault kind {name:?}"))?,
                    );
                }
                "at_secs" => at_secs = Some(self.number()?),
                other => return Err(format!("unknown fault field {other:?}")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
        Ok(ScheduledFault {
            kind: kind.ok_or("fault entry missing \"fault\"")?,
            at_secs: at_secs.ok_or("fault entry missing \"at_secs\"")?,
        })
    }

    fn schedule(&mut self) -> Result<FaultSchedule, String> {
        self.expect(b'{')?;
        let mut seed = None;
        let mut duration_secs = None;
        let mut faults = None;
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "seed" => seed = Some(self.number()?),
                "duration_secs" => duration_secs = Some(self.number()?),
                "faults" => {
                    self.expect(b'[')?;
                    let mut list = Vec::new();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                    } else {
                        loop {
                            list.push(self.fault()?);
                            match self.peek() {
                                Some(b',') => self.pos += 1,
                                Some(b']') => {
                                    self.pos += 1;
                                    break;
                                }
                                _ => {
                                    return Err(format!(
                                        "expected ',' or ']' at byte {}",
                                        self.pos
                                    ))
                                }
                            }
                        }
                    }
                    faults = Some(list);
                }
                other => return Err(format!("unknown schedule field {other:?}")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
        Ok(FaultSchedule {
            seed: seed.ok_or("schedule missing \"seed\"")?,
            duration_secs: duration_secs.ok_or("schedule missing \"duration_secs\"")?,
            faults: faults.ok_or("schedule missing \"faults\"")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_exactly() {
        let schedule = FaultSchedule {
            seed: 7,
            duration_secs: 300,
            faults: vec![
                ScheduledFault {
                    kind: TortureFaultKind::Operator(FaultType::ShutdownAbort),
                    at_secs: 42,
                },
                ScheduledFault { kind: TortureFaultKind::InstanceKill, at_secs: 120 },
            ],
        };
        let json = schedule.to_json();
        assert_eq!(
            json,
            "{\"seed\":7,\"duration_secs\":300,\"faults\":[\
             {\"fault\":\"shutdown_abort\",\"at_secs\":42},\
             {\"fault\":\"instance_kill\",\"at_secs\":120}]}"
        );
        let parsed = FaultSchedule::from_json(&json).unwrap();
        assert_eq!(parsed, schedule);
        // Canonical form is a fixed point.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn parser_tolerates_whitespace_and_field_order() {
        let text = r#" { "faults" : [ { "at_secs" : 9 , "fault" : "delete_datafile" } ] ,
                        "duration_secs" : 60 , "seed" : 1 } "#;
        let parsed = FaultSchedule::from_json(text).unwrap();
        assert_eq!(parsed.seed, 1);
        assert_eq!(parsed.duration_secs, 60);
        assert_eq!(parsed.faults.len(), 1);
        assert_eq!(parsed.faults[0].kind, TortureFaultKind::Operator(FaultType::DeleteDatafile));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{}",
            "{\"seed\":1}",
            "{\"seed\":1,\"duration_secs\":2,\"faults\":[{\"fault\":\"nope\",\"at_secs\":1}]}",
            "{\"seed\":1,\"duration_secs\":2,\"faults\":[]} trailing",
        ] {
            assert!(FaultSchedule::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn every_kind_round_trips_by_name() {
        for kind in TortureFaultKind::all_extended() {
            assert_eq!(TortureFaultKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(TortureFaultKind::from_name("bogus"), None);
    }

    #[test]
    fn extended_set_extends_the_original_seven() {
        let legacy = TortureFaultKind::all();
        let extended = TortureFaultKind::all_extended();
        assert_eq!(legacy.len(), 7, "historical seeds depend on a 7-kind pool");
        assert_eq!(extended.len(), 16);
        assert_eq!(&extended[..7], &legacy[..], "legacy kinds keep their draw order");
        assert_eq!(&extended[7..12], &TortureFaultKind::storage()[..]);
        assert_eq!(&extended[12..], &TortureFaultKind::replica()[..]);
    }

    #[test]
    fn replica_schedule_json_round_trips_and_is_detected() {
        let schedule = FaultSchedule {
            seed: 13,
            duration_secs: 180,
            faults: vec![
                ScheduledFault {
                    kind: TortureFaultKind::Replica(ReplicaFaultType::KillPrimary),
                    at_secs: 40,
                },
                ScheduledFault {
                    kind: TortureFaultKind::Replica(ReplicaFaultType::KillPromoted),
                    at_secs: 90,
                },
            ],
        };
        let json = schedule.to_json();
        assert!(json.contains("\"fault\":\"kill_primary\""));
        assert!(json.contains("\"fault\":\"kill_promoted\""));
        let parsed = FaultSchedule::from_json(&json).unwrap();
        assert_eq!(parsed, schedule);
        assert_eq!(parsed.to_json(), json);
        assert!(schedule.has_replica_faults());
        assert!(!FaultSchedule::quiet(1, 60).has_replica_faults());

        let mut rng = SimRng::seed_from(3);
        let drawn = FaultSchedule::random_replica(&mut rng, 6, 200, 20);
        assert!(drawn.faults.iter().all(|f| matches!(f.kind, TortureFaultKind::Replica(_))));
    }

    #[test]
    fn storage_schedule_json_round_trips() {
        let schedule = FaultSchedule {
            seed: 11,
            duration_secs: 120,
            faults: vec![
                ScheduledFault {
                    kind: TortureFaultKind::Storage(StorageFaultType::TornWrite),
                    at_secs: 30,
                },
                ScheduledFault {
                    kind: TortureFaultKind::Storage(StorageFaultType::DiskFull),
                    at_secs: 75,
                },
            ],
        };
        let json = schedule.to_json();
        assert!(json.contains("\"fault\":\"torn_write\""));
        assert!(json.contains("\"fault\":\"disk_full\""));
        let parsed = FaultSchedule::from_json(&json).unwrap();
        assert_eq!(parsed, schedule);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn random_storage_draws_only_storage_kinds() {
        let mut a = SimRng::seed_from(5);
        let mut b = SimRng::seed_from(5);
        let s1 = FaultSchedule::random_storage(&mut a, 8, 200, 20);
        let s2 = FaultSchedule::random_storage(&mut b, 8, 200, 20);
        assert_eq!(s1, s2);
        assert_eq!(s1.faults.len(), 8);
        for f in &s1.faults {
            assert!(
                matches!(f.kind, TortureFaultKind::Storage(_)),
                "non-storage kind {} in storage faultload",
                f.kind
            );
            assert!((20..200).contains(&f.at_secs));
        }
    }

    #[test]
    fn random_schedules_are_deterministic_and_in_range() {
        let mut a = SimRng::seed_from(99);
        let mut b = SimRng::seed_from(99);
        let s1 = FaultSchedule::random(&mut a, 5, 300, 30);
        let s2 = FaultSchedule::random(&mut b, 5, 300, 30);
        assert_eq!(s1, s2);
        assert_eq!(s1.faults.len(), 5);
        for f in &s1.faults {
            assert!((30..300).contains(&f.at_secs), "at_secs {} out of range", f.at_secs);
        }
        // Sorted view is by time.
        let sorted = s1.sorted_faults();
        assert!(sorted.windows(2).all(|w| w[0].at_secs <= w[1].at_secs));
    }
}
