//! The fault injector: reproduces operator mistakes through the same
//! interfaces a real administrator uses, then drives the recovery
//! procedure the mistake calls for (the paper's Figure 1 steps).

use recobench_engine::{DbResult, DbServer, EngineEvent, RecoveryPhase, Scn};
use recobench_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::taxonomy::FaultType;

/// What the fault is aimed at.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultTarget {
    /// Tablespace the fault targets (storage faults).
    pub tablespace: String,
    /// Table the fault targets (object faults).
    pub victim_table: String,
    /// Which datafile of the tablespace (datafile faults).
    pub datafile_index: usize,
}

impl Default for FaultTarget {
    fn default() -> Self {
        FaultTarget { tablespace: "TPCC".into(), victim_table: "STOCK".into(), datafile_index: 0 }
    }
}

/// A planned fault: what, when, and how quickly it is noticed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The fault type.
    pub fault: FaultType,
    /// Trigger instant, as an offset from workload start (the paper uses
    /// 150 s, 300 s and 600 s).
    pub trigger_after: SimDuration,
    /// Constant detection time before the recovery procedure starts. The
    /// paper assumes a small constant: the goal is to assess the recovery
    /// mechanisms, not the administrator's reaction time.
    pub detection: SimDuration,
    /// Imprecision of time-based incomplete recovery: `RECOVER UNTIL
    /// TIME` stops this much *before* the fault, so transactions committed
    /// in the margin are lost (the paper's "small number of lost committed
    /// transactions").
    pub pitr_margin: SimDuration,
    /// Target selection.
    pub target: FaultTarget,
}

impl FaultPlan {
    /// A plan with the paper's defaults (immediate detection, TPC-C
    /// tablespace targets).
    pub fn new(fault: FaultType, trigger_after_secs: u64) -> Self {
        FaultPlan {
            fault,
            trigger_after: SimDuration::from_secs(trigger_after_secs),
            detection: SimDuration::from_secs(1),
            pitr_margin: SimDuration::from_secs(2),
            target: FaultTarget::default(),
        }
    }
}

/// What the injection actually did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionRecord {
    /// The fault type injected.
    pub fault: FaultType,
    /// When the wrong action executed.
    pub injected_at: SimTime,
    /// SCN just before the wrong action (the stop point for incomplete
    /// recovery).
    pub scn_before: Scn,
    /// Human-readable detail (e.g. the deleted path).
    pub detail: String,
}

/// Result of running the recovery procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultOutcome {
    /// The injection this recovers from.
    pub record: InjectionRecord,
    /// When the procedure started (injection + detection).
    pub recovery_started_at: SimTime,
    /// When the database was fully serviceable again, from the server's
    /// perspective (the driver then measures the end-user view).
    pub recovery_finished_at: SimTime,
    /// Redo records re-applied, if the procedure replayed the log.
    pub records_applied: u64,
    /// Archive files processed, if any.
    pub archives_processed: u64,
}

/// Injects one planned fault and drives its recovery.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Creates an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Absolute trigger instant given the workload start.
    pub fn trigger_time(&self, workload_start: SimTime) -> SimTime {
        workload_start + self.plan.trigger_after
    }

    /// Performs the wrong operation — the same action, through the same
    /// interface, as the operator mistake it reproduces.
    ///
    /// # Errors
    ///
    /// Fails if the target does not exist (mis-planned experiment).
    pub fn inject(&self, server: &mut DbServer) -> DbResult<InjectionRecord> {
        let scn_before = server.current_scn();
        let t = &self.plan.target;
        let detail = match self.plan.fault {
            FaultType::ShutdownAbort => {
                server.shutdown_abort()?;
                "SHUTDOWN ABORT".to_string()
            }
            FaultType::DeleteDatafile => {
                let path = self.victim_path(server)?;
                server.os_delete_file(&path)?;
                format!("rm {path}")
            }
            FaultType::DeleteTablespace => {
                server.drop_tablespace(&t.tablespace)?;
                format!("DROP TABLESPACE {} INCLUDING CONTENTS AND DATAFILES", t.tablespace)
            }
            FaultType::SetDatafileOffline => {
                let path = self.victim_path(server)?;
                server.offline_datafile(&path)?;
                format!("ALTER DATABASE DATAFILE '{path}' OFFLINE")
            }
            FaultType::SetTablespaceOffline => {
                server.offline_tablespace(&t.tablespace)?;
                format!("ALTER TABLESPACE {} OFFLINE", t.tablespace)
            }
            FaultType::DeleteUsersObject => {
                server.drop_table(&t.victim_table)?;
                format!("DROP TABLE {}", t.victim_table)
            }
        };
        Ok(InjectionRecord {
            fault: self.plan.fault,
            injected_at: server.clock().now(),
            scn_before,
            detail,
        })
    }

    fn victim_path(&self, server: &DbServer) -> DbResult<String> {
        let paths = server.datafile_paths(&self.plan.target.tablespace)?;
        paths
            .get(self.plan.target.datafile_index % paths.len().max(1))
            .cloned()
            .ok_or_else(|| recobench_engine::DbError::NotFound("victim datafile".into()))
    }

    /// Runs the recovery procedure the fault requires, after the modelled
    /// detection time. Returns when the server is serviceable again.
    ///
    /// # Errors
    ///
    /// Fails if recovery is impossible (e.g. no archives / no backup) —
    /// which is itself a benchmark result: the configuration cannot
    /// tolerate this fault.
    pub fn recover(&self, server: &mut DbServer, record: &InjectionRecord) -> DbResult<FaultOutcome> {
        let noticed_from = server.clock().now();
        server.clock().advance(self.plan.detection);
        server.emit(EngineEvent::PhaseSpan {
            phase: RecoveryPhase::Detection,
            started_at: noticed_from,
        });
        let started = server.clock().now();
        let mut records_applied = 0;
        let mut archives = 0;
        match self.plan.fault {
            FaultType::ShutdownAbort => {
                server.startup()?;
            }
            FaultType::DeleteDatafile => {
                // The DBA notices errors, offlines the damaged file, then
                // restores + recovers it.
                let path = {
                    // The path was deleted; recover it by its recorded name.
                    record
                        .detail
                        .strip_prefix("rm ")
                        .unwrap_or(&record.detail)
                        .to_string()
                };
                server.offline_datafile(&path)?;
                let summary = server.recover_datafile(&path)?;
                records_applied = summary.applied;
                archives = summary.archives_read;
            }
            FaultType::SetDatafileOffline => {
                let path = record
                    .detail
                    .strip_prefix("ALTER DATABASE DATAFILE '")
                    .and_then(|s| s.strip_suffix("' OFFLINE"))
                    .unwrap_or(&record.detail)
                    .to_string();
                let summary = server.recover_datafile(&path)?;
                records_applied = summary.applied;
                archives = summary.archives_read;
            }
            FaultType::SetTablespaceOffline => {
                server.online_tablespace(&self.plan.target.tablespace)?;
            }
            FaultType::DeleteTablespace | FaultType::DeleteUsersObject => {
                // Stop just *after* the last pre-fault SCN: everything
                // committed before the mistake is kept, the mistake's own
                // record is the first one discarded.
                let summary = server.recover_database_until(record.scn_before.next())?;
                records_applied = summary.applied;
                archives = summary.archives_read;
            }
        }
        Ok(FaultOutcome {
            record: record.clone(),
            recovery_started_at: started,
            recovery_finished_at: server.clock().now(),
            records_applied,
            archives_processed: archives,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recobench_engine::catalog::IndexDef;
    use recobench_engine::row::{Row, Value};
    use recobench_engine::{DiskLayout, InstanceConfig};
    use recobench_sim::SimClock;

    fn server_with_data() -> DbServer {
        let cfg = InstanceConfig::builder()
            .redo_file_bytes(64 * 1024)
            .redo_groups(3)
            .checkpoint_timeout_secs(60)
            .archive_mode(true)
            .cache_blocks(64)
            .build();
        let mut srv =
            DbServer::on_fresh_disks("FLT", SimClock::shared(), DiskLayout::four_disk(), cfg);
        srv.create_database().unwrap();
        srv.create_user("tpcc").unwrap();
        srv.create_tablespace("TPCC", 2, 512).unwrap();
        srv.create_table(
            "STOCK",
            "tpcc",
            "TPCC",
            vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }],
        )
        .unwrap();
        let t = srv.table_id("STOCK").unwrap();
        let s = srv.connect().unwrap();
        for i in 0..30 {
            srv.insert(s, t, Row::new(vec![Value::U64(i), Value::from("stock-row")])).unwrap();
            srv.commit(s).unwrap();
        }
        srv.take_cold_backup().unwrap();
        let s = srv.connect().unwrap();
        for i in 30..60 {
            srv.insert(s, t, Row::new(vec![Value::U64(i), Value::from("stock-row")])).unwrap();
            srv.commit(s).unwrap();
        }
        srv.disconnect(s);
        srv
    }

    fn run(fault: FaultType) -> (DbServer, FaultOutcome) {
        let mut srv = server_with_data();
        let injector = FaultInjector::new(FaultPlan::new(fault, 150));
        let rec = injector.inject(&mut srv).unwrap();
        let out = injector.recover(&mut srv, &rec).unwrap();
        (srv, out)
    }

    #[test]
    fn shutdown_abort_round_trip_keeps_all_rows() {
        let (srv, out) = run(FaultType::ShutdownAbort);
        assert!(srv.is_open());
        let t = srv.table_id("STOCK").unwrap();
        assert_eq!(srv.peek_scan(t).unwrap().len(), 60, "complete recovery");
        assert!(out.recovery_finished_at > out.recovery_started_at);
    }

    #[test]
    fn delete_datafile_is_completely_recovered() {
        let (srv, out) = run(FaultType::DeleteDatafile);
        let t = srv.table_id("STOCK").unwrap();
        assert_eq!(srv.peek_scan(t).unwrap().len(), 60, "media recovery loses nothing");
        assert!(out.records_applied > 0);
    }

    #[test]
    fn offline_faults_recover_quickly() {
        let (srv, out_df) = run(FaultType::SetDatafileOffline);
        let t = srv.table_id("STOCK").unwrap();
        assert_eq!(srv.peek_scan(t).unwrap().len(), 60);
        let df_time = out_df.recovery_finished_at.saturating_since(out_df.recovery_started_at);

        let (srv2, out_ts) = run(FaultType::SetTablespaceOffline);
        let t2 = srv2.table_id("STOCK").unwrap();
        assert_eq!(srv2.peek_scan(t2).unwrap().len(), 60);
        let ts_time = out_ts.recovery_finished_at.saturating_since(out_ts.recovery_started_at);
        assert!(
            ts_time < df_time,
            "tablespace online ({ts_time}) is faster than datafile recovery ({df_time})"
        );
        assert!(ts_time.as_secs_f64() < 2.0, "paper: always close to 1 second, got {ts_time}");
    }

    #[test]
    fn drop_table_needs_incomplete_recovery_and_restores_the_table() {
        let (srv, out) = run(FaultType::DeleteUsersObject);
        let t = srv.table_id("STOCK").unwrap();
        // All 60 rows committed before the fault are back.
        assert_eq!(srv.peek_scan(t).unwrap().len(), 60);
        assert!(out.records_applied > 0);
        assert_eq!(srv.stats().incomplete_recoveries, 1);
    }

    #[test]
    fn drop_tablespace_needs_incomplete_recovery() {
        let (srv, _out) = run(FaultType::DeleteTablespace);
        let t = srv.table_id("STOCK").unwrap();
        assert_eq!(srv.peek_scan(t).unwrap().len(), 60);
        assert_eq!(srv.stats().incomplete_recoveries, 1);
    }

    #[test]
    fn trigger_time_offsets_from_workload_start() {
        let plan = FaultPlan::new(FaultType::ShutdownAbort, 300);
        let inj = FaultInjector::new(plan);
        let t0 = SimTime::from_secs(1_000);
        assert_eq!(inj.trigger_time(t0), SimTime::from_secs(1_300));
    }
}
