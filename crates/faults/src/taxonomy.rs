//! The operator-fault classification (paper Tables 1 and 2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five classes of DBMS operator faults (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// Mistakes in the administration of processes and memory structures
    /// (wrong SGA parameters, accidental shutdown, killed sessions).
    MemoryAndProcesses,
    /// Mistakes in passwords, privileges, quotas and profiles.
    SecurityManagement,
    /// Mistakes in the administration of physical and logical storage
    /// (removed or corrupted files, bad file distribution, space
    /// exhaustion).
    StorageAdministration,
    /// Errors in the management of user objects (dropped tables, wrong
    /// storage or optimization settings).
    DatabaseObjectAdministration,
    /// Mistakes in the configuration of the recovery mechanisms (missing
    /// backups, lost log or archive files).
    RecoveryMechanismsAdministration,
}

impl FaultClass {
    /// All five classes, in the paper's order.
    pub fn all() -> [FaultClass; 5] {
        [
            FaultClass::MemoryAndProcesses,
            FaultClass::SecurityManagement,
            FaultClass::StorageAdministration,
            FaultClass::DatabaseObjectAdministration,
            FaultClass::RecoveryMechanismsAdministration,
        ]
    }

    /// The paper's description of the class.
    pub fn description(self) -> &'static str {
        match self {
            FaultClass::MemoryAndProcesses => {
                "mistakes in the administration of processes and memory structures"
            }
            FaultClass::SecurityManagement => {
                "mistakes in the attribution of passwords, access privileges and disk space"
            }
            FaultClass::StorageAdministration => {
                "mistakes in the administration of the physical and logical storage structures"
            }
            FaultClass::DatabaseObjectAdministration => {
                "errors related to the management of the user objects"
            }
            FaultClass::RecoveryMechanismsAdministration => {
                "mistakes in the configuration and administration of the recovery mechanisms"
            }
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultClass::MemoryAndProcesses => "Memory & processes admin.",
            FaultClass::SecurityManagement => "Security management",
            FaultClass::StorageAdministration => "Storage administration",
            FaultClass::DatabaseObjectAdministration => "Database object admin.",
            FaultClass::RecoveryMechanismsAdministration => "Recovery mechanisms admin.",
        };
        f.write_str(name)
    }
}

/// Portability of a concrete fault type to DBMS other than Oracle 8i
/// (the right-hand column of the paper's Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Portability {
    /// Exactly the same fault exists in other DBMS.
    Yes,
    /// A fault with equivalent effects exists after translation.
    Equivalent,
    /// Specific to Oracle 8i.
    OracleSpecific,
}

impl fmt::Display for Portability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Portability::Yes => "Yes",
            Portability::Equivalent => "Equivalent",
            Portability::OracleSpecific => "Oracle",
        })
    }
}

/// The concrete operator fault types of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the names are the documentation; see `description`
pub enum OperatorFaultType {
    InstanceShutdown,
    RemoveInitializationFile,
    MisconfigureSgaParameters,
    MisconfigureMaxUserSessions,
    KillUserSession,
    DatabaseAccessLevelFault,
    IncorrectPrivileges,
    IncorrectDiskQuotas,
    IncorrectProfiles,
    IncorrectTablespaceAttribution,
    DeleteControlfileTablespaceOrRollbackSegment,
    DeleteDatafile,
    IncorrectDatafileDistribution,
    InsufficientRollbackSegments,
    SetTablespaceOffline,
    SetDatafileOffline,
    SetRollbackSegmentOffline,
    TablespaceOutOfSpace,
    RollbackSegmentOutOfSpace,
    DeleteDatabaseUser,
    DeleteUsersObject,
    IncorrectObjectStorageParameters,
    SetNologgingOnTables,
    IncorrectOptimizationStructures,
    DeleteRedoLogFileOrGroup,
    RedoLogMembersOnSameDisk,
    InsufficientRedoLogGroups,
    NoArchiveLogs,
    DeleteArchiveLogFile,
    ArchiveFilesOnDataDisk,
    MissingBackups,
}

impl OperatorFaultType {
    /// Every type, in the paper's Table 2 order.
    pub fn all() -> Vec<OperatorFaultType> {
        use OperatorFaultType::*;
        vec![
            InstanceShutdown,
            RemoveInitializationFile,
            MisconfigureSgaParameters,
            MisconfigureMaxUserSessions,
            KillUserSession,
            DatabaseAccessLevelFault,
            IncorrectPrivileges,
            IncorrectDiskQuotas,
            IncorrectProfiles,
            IncorrectTablespaceAttribution,
            DeleteControlfileTablespaceOrRollbackSegment,
            DeleteDatafile,
            IncorrectDatafileDistribution,
            InsufficientRollbackSegments,
            SetTablespaceOffline,
            SetDatafileOffline,
            SetRollbackSegmentOffline,
            TablespaceOutOfSpace,
            RollbackSegmentOutOfSpace,
            DeleteDatabaseUser,
            DeleteUsersObject,
            IncorrectObjectStorageParameters,
            SetNologgingOnTables,
            IncorrectOptimizationStructures,
            DeleteRedoLogFileOrGroup,
            RedoLogMembersOnSameDisk,
            InsufficientRedoLogGroups,
            NoArchiveLogs,
            DeleteArchiveLogFile,
            ArchiveFilesOnDataDisk,
            MissingBackups,
        ]
    }

    /// The class the type belongs to.
    pub fn class(self) -> FaultClass {
        use OperatorFaultType::*;
        match self {
            InstanceShutdown | RemoveInitializationFile | MisconfigureSgaParameters
            | MisconfigureMaxUserSessions | KillUserSession => FaultClass::MemoryAndProcesses,
            DatabaseAccessLevelFault | IncorrectPrivileges | IncorrectDiskQuotas
            | IncorrectProfiles | IncorrectTablespaceAttribution => FaultClass::SecurityManagement,
            DeleteControlfileTablespaceOrRollbackSegment
            | DeleteDatafile
            | IncorrectDatafileDistribution
            | InsufficientRollbackSegments
            | SetTablespaceOffline
            | SetDatafileOffline
            | SetRollbackSegmentOffline
            | TablespaceOutOfSpace
            | RollbackSegmentOutOfSpace => FaultClass::StorageAdministration,
            DeleteDatabaseUser | DeleteUsersObject | IncorrectObjectStorageParameters
            | SetNologgingOnTables | IncorrectOptimizationStructures => {
                FaultClass::DatabaseObjectAdministration
            }
            DeleteRedoLogFileOrGroup | RedoLogMembersOnSameDisk | InsufficientRedoLogGroups
            | NoArchiveLogs | DeleteArchiveLogFile | ArchiveFilesOnDataDisk | MissingBackups => {
                FaultClass::RecoveryMechanismsAdministration
            }
        }
    }

    /// Portability rating from the paper's Table 2.
    pub fn portability(self) -> Portability {
        use OperatorFaultType::*;
        match self {
            InstanceShutdown | RemoveInitializationFile | MisconfigureSgaParameters
            | MisconfigureMaxUserSessions | KillUserSession | DatabaseAccessLevelFault
            | IncorrectDatafileDistribution | DeleteDatabaseUser | DeleteUsersObject
            | IncorrectOptimizationStructures => Portability::Yes,
            IncorrectPrivileges | IncorrectDiskQuotas | IncorrectProfiles | DeleteDatafile
            | SetDatafileOffline | IncorrectObjectStorageParameters | DeleteRedoLogFileOrGroup
            | RedoLogMembersOnSameDisk | InsufficientRedoLogGroups | NoArchiveLogs
            | DeleteArchiveLogFile | ArchiveFilesOnDataDisk | MissingBackups => {
                Portability::Equivalent
            }
            IncorrectTablespaceAttribution
            | DeleteControlfileTablespaceOrRollbackSegment
            | InsufficientRollbackSegments
            | SetTablespaceOffline
            | SetRollbackSegmentOffline
            | TablespaceOutOfSpace
            | RollbackSegmentOutOfSpace
            | SetNologgingOnTables => Portability::OracleSpecific,
        }
    }

    /// Human-readable description (the Table 2 row text).
    pub fn description(self) -> &'static str {
        use OperatorFaultType::*;
        match self {
            InstanceShutdown => "making a database instance shutdown",
            RemoveInitializationFile => "removing or corrupting the initialization file",
            MisconfigureSgaParameters => "incorrect configuration of the SGA parameters",
            MisconfigureMaxUserSessions => "incorrect config. max. number of user sessions",
            KillUserSession => "killing a user session",
            DatabaseAccessLevelFault => "database access level faults (passwords)",
            IncorrectPrivileges => "incorrect attribution of system and object privileges",
            IncorrectDiskQuotas => "attribution of incorrect disk quotas to users",
            IncorrectProfiles => "attribution of incorrect profiles to users",
            IncorrectTablespaceAttribution => "incorrect attribution of tablespaces to users",
            DeleteControlfileTablespaceOrRollbackSegment => {
                "delete a controlfile, tablespace or rollback segment"
            }
            DeleteDatafile => "delete a datafile",
            IncorrectDatafileDistribution => "incorrect distribution of datafiles through disks",
            InsufficientRollbackSegments => "insufficient number of rollback segments",
            SetTablespaceOffline => "set a tablespace offline",
            SetDatafileOffline => "set a datafile offline",
            SetRollbackSegmentOffline => "set a rollback segment offline",
            TablespaceOutOfSpace => "allow a tablespace to run out of space",
            RollbackSegmentOutOfSpace => "allow a rollback segment to run out of space",
            DeleteDatabaseUser => "delete a database user",
            DeleteUsersObject => "delete any user's database object",
            IncorrectObjectStorageParameters => "incorrect config. object's storage parameters",
            SetNologgingOnTables => "set the NOLOGGING option in tables",
            IncorrectOptimizationStructures => "incorrect use of optimization structures",
            DeleteRedoLogFileOrGroup => "delete a redo log file or group",
            RedoLogMembersOnSameDisk => "store all redo log group members in same disk",
            InsufficientRedoLogGroups => "insufficient redo log groups to support archive",
            NoArchiveLogs => "inexistence of archive logs",
            DeleteArchiveLogFile => "delete a archive log file",
            ArchiveFilesOnDataDisk => "store archive files in the same disk as data files",
            MissingBackups => "backups missing to allow recovery",
        }
    }

    /// The injectable subset this type is represented by in the
    /// experiments, if any (paper §4: six types chosen to cover the
    /// effects of the others).
    pub fn representative(self) -> Option<FaultType> {
        use OperatorFaultType::*;
        match self {
            InstanceShutdown | KillUserSession | RemoveInitializationFile => {
                Some(FaultType::ShutdownAbort)
            }
            DeleteDatafile => Some(FaultType::DeleteDatafile),
            DeleteControlfileTablespaceOrRollbackSegment => Some(FaultType::DeleteTablespace),
            SetDatafileOffline => Some(FaultType::SetDatafileOffline),
            SetTablespaceOffline => Some(FaultType::SetTablespaceOffline),
            DeleteUsersObject | DeleteDatabaseUser => Some(FaultType::DeleteUsersObject),
            _ => None,
        }
    }
}

/// Whether a fault leads to *complete* recovery (no committed work lost —
/// paper Table 5) or *incomplete* recovery (the tail of history is
/// sacrificed — paper Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoveryKind {
    /// All committed transactions survive.
    Complete,
    /// Committed transactions after the recovery stop point are lost.
    Incomplete,
}

/// The six fault types injected in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultType {
    /// `SHUTDOWN ABORT` of the instance.
    ShutdownAbort,
    /// OS-level deletion of a datafile.
    DeleteDatafile,
    /// Dropping a whole tablespace including contents and datafiles.
    DeleteTablespace,
    /// Taking a datafile offline.
    SetDatafileOffline,
    /// Taking a tablespace offline.
    SetTablespaceOffline,
    /// Dropping a user table.
    DeleteUsersObject,
}

impl FaultType {
    /// All six, in the paper's order.
    pub fn all() -> [FaultType; 6] {
        [
            FaultType::ShutdownAbort,
            FaultType::DeleteDatafile,
            FaultType::DeleteTablespace,
            FaultType::SetDatafileOffline,
            FaultType::SetTablespaceOffline,
            FaultType::DeleteUsersObject,
        ]
    }

    /// Which recovery the fault requires (the paper's Table 4 / Table 5
    /// split).
    pub fn recovery_kind(self) -> RecoveryKind {
        match self {
            FaultType::DeleteTablespace | FaultType::DeleteUsersObject => RecoveryKind::Incomplete,
            _ => RecoveryKind::Complete,
        }
    }

    /// The class the fault belongs to.
    pub fn class(self) -> FaultClass {
        match self {
            FaultType::ShutdownAbort => FaultClass::MemoryAndProcesses,
            FaultType::DeleteDatafile
            | FaultType::DeleteTablespace
            | FaultType::SetDatafileOffline
            | FaultType::SetTablespaceOffline => FaultClass::StorageAdministration,
            FaultType::DeleteUsersObject => FaultClass::DatabaseObjectAdministration,
        }
    }
}

/// Storage-hardware fault types injected through the simulated
/// filesystem's fault layer (`recobench_vfs::FaultArm`), extending the
/// paper's operator faultload with the hardware failures a storage
/// administrator also has to survive: torn block writes, interrupted log
/// appends, silent bit-rot, disk-space exhaustion, and a limping disk.
///
/// All five resolve with *complete* recovery — none of them is a
/// committed operator mistake, so no history needs to be sacrificed. The
/// first three are detected by the engine's per-block CRC checksums (and
/// by the torn-tail end-of-log rule for the redo log); the last two are
/// loud at the vfs level (`ENOSPC` / latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageFaultType {
    /// A block write persists only a prefix of the new image; the rest of
    /// the block keeps its previous contents (torn page).
    TornWrite,
    /// A redo-log append is interrupted mid-write: a prefix of the span
    /// persists and the writer sees an error (torn log tail).
    PartialAppend,
    /// One bit of one written block flips silently on the media.
    BitRot,
    /// The disk runs out of space: writes fail with `ENOSPC` until the
    /// operator frees space.
    DiskFull,
    /// A limping disk: every I/O internally retries, multiplying service
    /// time. A pure performance fault — no data is damaged.
    SlowIo,
}

impl StorageFaultType {
    /// All five, in a fixed order.
    pub fn all() -> [StorageFaultType; 5] {
        [
            StorageFaultType::TornWrite,
            StorageFaultType::PartialAppend,
            StorageFaultType::BitRot,
            StorageFaultType::DiskFull,
            StorageFaultType::SlowIo,
        ]
    }

    /// Stable snake_case name used in schedule JSON and reports.
    pub fn name(self) -> &'static str {
        match self {
            StorageFaultType::TornWrite => "torn_write",
            StorageFaultType::PartialAppend => "partial_append",
            StorageFaultType::BitRot => "bit_rot",
            StorageFaultType::DiskFull => "disk_full",
            StorageFaultType::SlowIo => "slow_io",
        }
    }

    /// Human-readable description of the hardware failure.
    pub fn description(self) -> &'static str {
        match self {
            StorageFaultType::TornWrite => "torn block write (prefix of the image persists)",
            StorageFaultType::PartialAppend => "interrupted redo append (torn log tail)",
            StorageFaultType::BitRot => "silent single-bit rot in a written block",
            StorageFaultType::DiskFull => "disk out of space (ENOSPC on writes)",
            StorageFaultType::SlowIo => "limping disk (every I/O retried, multiplying latency)",
        }
    }

    /// The taxonomy class the fault maps into: storage administration —
    /// the same territory the paper's removed/corrupted-file faults cover.
    pub fn class(self) -> FaultClass {
        FaultClass::StorageAdministration
    }

    /// Storage-hardware faults never require sacrificing committed
    /// history: detection plus media or crash recovery restores them.
    pub fn recovery_kind(self) -> RecoveryKind {
        RecoveryKind::Complete
    }
}

/// Replica-set fault types: node and shipping failures a high-availability
/// operator has to survive when running stand-by replicas behind the
/// primary (engine `ReplicaSet`). They extend the paper's single-server
/// faultload to the replicated deployments §5.3 motivates.
///
/// Replica faults resolve with *complete* recovery from the client's point
/// of view only when failover succeeds with no acknowledged commit left
/// behind on the dead primary; otherwise the tail between the promoted
/// node's last applied commit and the crash is sacrificed — the same
/// incomplete-recovery shape as the paper's Table 4, but decided by
/// replication lag rather than by a restore stop point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplicaFaultType {
    /// Kill the primary instance outright; the replica set must detect it
    /// and promote a stand-by (quorum or operator decision).
    KillPrimary,
    /// Kill the *newly promoted* node after a failover — the classic
    /// double fault. Requires a prior [`ReplicaFaultType::KillPrimary`] in
    /// the same schedule to have any effect.
    KillPromoted,
    /// Corrupt the next archived log copy shipped to a stand-by: the copy
    /// fails decode on arrival and the stand-by freezes (typed
    /// `ShippedArchiveCorrupt`), keeping its vote but losing candidacy as
    /// it falls behind.
    CorruptShippedArchive,
    /// Partition a stand-by from the rest of the set: it stops receiving
    /// archives and cannot vote in quorum decisions until healed.
    PartitionReplica,
}

impl ReplicaFaultType {
    /// All four, in a fixed order.
    pub fn all() -> [ReplicaFaultType; 4] {
        [
            ReplicaFaultType::KillPrimary,
            ReplicaFaultType::KillPromoted,
            ReplicaFaultType::CorruptShippedArchive,
            ReplicaFaultType::PartitionReplica,
        ]
    }

    /// Stable snake_case name used in schedule JSON and reports.
    pub fn name(self) -> &'static str {
        match self {
            ReplicaFaultType::KillPrimary => "kill_primary",
            ReplicaFaultType::KillPromoted => "kill_promoted",
            ReplicaFaultType::CorruptShippedArchive => "corrupt_shipped_archive",
            ReplicaFaultType::PartitionReplica => "partition_replica",
        }
    }

    /// Human-readable description of the failure.
    pub fn description(self) -> &'static str {
        match self {
            ReplicaFaultType::KillPrimary => "kill the primary; the replica set must fail over",
            ReplicaFaultType::KillPromoted => {
                "kill the newly promoted node after failover (double fault)"
            }
            ReplicaFaultType::CorruptShippedArchive => {
                "corrupt the next shipped archive copy on a stand-by"
            }
            ReplicaFaultType::PartitionReplica => {
                "partition a stand-by away from the set (no archives, no vote)"
            }
        }
    }

    /// The taxonomy class the fault maps into: all four are failures of
    /// the recovery machinery itself (the stand-by apparatus the paper
    /// files under recovery-mechanisms administration).
    pub fn class(self) -> FaultClass {
        FaultClass::RecoveryMechanismsAdministration
    }

    /// Whether committed history can be lost. Killing an instance is
    /// recoverable in full as long as a sufficiently caught-up stand-by
    /// wins promotion; shipping corruption and partitions damage only the
    /// replica, never acknowledged history.
    pub fn recovery_kind(self) -> RecoveryKind {
        match self {
            ReplicaFaultType::KillPrimary | ReplicaFaultType::KillPromoted => {
                RecoveryKind::Incomplete
            }
            ReplicaFaultType::CorruptShippedArchive | ReplicaFaultType::PartitionReplica => {
                RecoveryKind::Complete
            }
        }
    }
}

impl fmt::Display for ReplicaFaultType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReplicaFaultType::KillPrimary => "Kill primary",
            ReplicaFaultType::KillPromoted => "Kill promoted node",
            ReplicaFaultType::CorruptShippedArchive => "Corrupt shipped archive",
            ReplicaFaultType::PartitionReplica => "Partition replica",
        })
    }
}

impl fmt::Display for StorageFaultType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StorageFaultType::TornWrite => "Torn block write",
            StorageFaultType::PartialAppend => "Partial redo append",
            StorageFaultType::BitRot => "Silent bit-rot",
            StorageFaultType::DiskFull => "Disk full",
            StorageFaultType::SlowIo => "Slow I/O",
        })
    }
}

impl fmt::Display for FaultType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultType::ShutdownAbort => "Shutdown abort",
            FaultType::DeleteDatafile => "Delete datafile",
            FaultType::DeleteTablespace => "Delete tablespace",
            FaultType::SetDatafileOffline => "Set datafile offline",
            FaultType::SetTablespaceOffline => "Set tablespace offline",
            FaultType::DeleteUsersObject => "Delete user's object",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_31_rows_in_5_classes() {
        let all = OperatorFaultType::all();
        assert_eq!(all.len(), 31);
        for class in FaultClass::all() {
            assert!(
                all.iter().any(|t| t.class() == class),
                "class {class} has no concrete type"
            );
        }
    }

    #[test]
    fn portability_matches_paper_examples() {
        assert_eq!(OperatorFaultType::InstanceShutdown.portability(), Portability::Yes);
        assert_eq!(OperatorFaultType::DeleteDatafile.portability(), Portability::Equivalent);
        assert_eq!(
            OperatorFaultType::SetTablespaceOffline.portability(),
            Portability::OracleSpecific
        );
        assert_eq!(OperatorFaultType::MissingBackups.portability(), Portability::Equivalent);
    }

    #[test]
    fn six_injectable_types_cover_three_classes() {
        let classes: std::collections::HashSet<_> =
            FaultType::all().iter().map(|f| f.class()).collect();
        assert_eq!(classes.len(), 3, "the experiments cover three fault classes");
        assert!(!classes.contains(&FaultClass::SecurityManagement));
        assert!(!classes.contains(&FaultClass::RecoveryMechanismsAdministration));
    }

    #[test]
    fn recovery_kind_split_matches_tables_4_and_5() {
        use FaultType::*;
        assert_eq!(DeleteUsersObject.recovery_kind(), RecoveryKind::Incomplete);
        assert_eq!(DeleteTablespace.recovery_kind(), RecoveryKind::Incomplete);
        for f in [ShutdownAbort, DeleteDatafile, SetDatafileOffline, SetTablespaceOffline] {
            assert_eq!(f.recovery_kind(), RecoveryKind::Complete);
        }
    }

    #[test]
    fn representatives_point_into_the_injectable_set() {
        for t in OperatorFaultType::all() {
            if let Some(rep) = t.representative() {
                assert!(FaultType::all().contains(&rep));
            }
        }
        assert_eq!(
            OperatorFaultType::KillUserSession.representative(),
            Some(FaultType::ShutdownAbort)
        );
    }

    #[test]
    fn storage_faults_are_complete_recovery_storage_class() {
        assert_eq!(StorageFaultType::all().len(), 5);
        for s in StorageFaultType::all() {
            assert_eq!(s.class(), FaultClass::StorageAdministration);
            assert_eq!(s.recovery_kind(), RecoveryKind::Complete);
            assert!(!s.name().is_empty());
            assert!(!s.description().is_empty());
            assert!(!s.to_string().is_empty());
            assert!(s.name().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn replica_faults_classify_as_recovery_mechanisms() {
        assert_eq!(ReplicaFaultType::all().len(), 4);
        for r in ReplicaFaultType::all() {
            assert_eq!(r.class(), FaultClass::RecoveryMechanismsAdministration);
            assert!(!r.name().is_empty());
            assert!(!r.description().is_empty());
            assert!(!r.to_string().is_empty());
            assert!(r.name().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
        // Node kills can lose the acked tail (replication lag); shipping
        // faults damage only the replica.
        assert_eq!(ReplicaFaultType::KillPrimary.recovery_kind(), RecoveryKind::Incomplete);
        assert_eq!(
            ReplicaFaultType::CorruptShippedArchive.recovery_kind(),
            RecoveryKind::Complete
        );
    }

    #[test]
    fn descriptions_and_display_are_nonempty() {
        for t in OperatorFaultType::all() {
            assert!(!t.description().is_empty());
        }
        for f in FaultType::all() {
            assert!(!f.to_string().is_empty());
        }
        for c in FaultClass::all() {
            assert!(!c.to_string().is_empty());
            assert!(!c.description().is_empty());
        }
    }
}
