//! Operator faults for RecoBench.
//!
//! The paper's central contribution is a *faultload of operator faults* —
//! database-administrator mistakes reproduced through exactly the same
//! interfaces a real DBA uses. This crate provides:
//!
//! * the **taxonomy**: the five fault classes of the paper's Table 1 and
//!   the concrete Oracle-8i fault types of Table 2, with their
//!   portability rating;
//! * the **injector**: the six fault types actually injected in the
//!   paper's experiments, each implemented as the real administrative or
//!   OS action against the engine plus the recovery procedure a competent
//!   DBA would run afterwards.

pub mod injector;
pub mod scenario;
pub mod schedule;
pub mod taxonomy;

pub use injector::{FaultInjector, FaultOutcome, FaultPlan, FaultTarget, InjectionRecord};
pub use scenario::{DoubleFaultOutcome, DoubleFaultPlan, Sabotage};
pub use schedule::{FaultSchedule, ScheduledFault, TortureFaultKind};
pub use taxonomy::{
    FaultClass, FaultType, OperatorFaultType, Portability, RecoveryKind, ReplicaFaultType,
    StorageFaultType,
};
