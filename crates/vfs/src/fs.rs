//! The simulated filesystem: disks and files.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use recobench_sim::disk::IoKind;
use recobench_sim::{Disk, DiskProfile, DiskStats, SimTime};
use serde::{Deserialize, Serialize};

use crate::error::{VfsError, VfsResult};

/// Identifies one of the simulated spindles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DiskId(pub usize);

/// Stable handle to a file, valid until the file is purged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u64);

/// What role a file plays; used for reporting and for targeting faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileKind {
    /// A database datafile (block-addressed).
    Data,
    /// A control file (block-addressed).
    Control,
    /// An online redo log member (append-only).
    Redo,
    /// An archived redo log (append-only).
    Archive,
    /// A backup piece (append-only).
    Backup,
}

/// Metadata snapshot for a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Handle of the file.
    pub id: FileId,
    /// Path-like unique name, e.g. `/u02/tpcc_data01.dbf`.
    pub path: String,
    /// Owning disk.
    pub disk: DiskId,
    /// Role of the file.
    pub kind: FileKind,
    /// Logical size in bytes (blocks × block size, or appended length).
    pub size_bytes: u64,
    /// Whether the file has been deleted by an operator action.
    pub deleted: bool,
    /// Whether the file has been corrupted by an operator action.
    pub corrupt: bool,
}

#[derive(Debug, Clone)]
enum Content {
    /// Sparse block store; absent entries read back as all-zero blocks.
    Blocks { block_size: u32, nblocks: u64, data: BTreeMap<u64, Bytes> },
    /// Append-only byte stream, stored as a list of appended segments.
    Append { segments: Vec<Bytes>, len: u64 },
}

#[derive(Debug, Clone)]
struct FileEntry {
    path: String,
    disk: DiskId,
    kind: FileKind,
    deleted: bool,
    corrupt: bool,
    /// Individually corrupted blocks of a block file (block-granular
    /// damage from [`SimFs::corrupt_path`]); reads of these blocks fail
    /// while the rest of the file stays readable. An overwrite heals.
    corrupt_blocks: BTreeSet<u64>,
    content: Content,
}

impl FileEntry {
    fn check_readable(&self) -> VfsResult<()> {
        if self.deleted {
            return Err(VfsError::Deleted(self.path.clone()));
        }
        if self.corrupt {
            return Err(VfsError::Corrupt(self.path.clone()));
        }
        Ok(())
    }

    /// Like [`FileEntry::check_readable`], but also fails if *any* block is
    /// individually corrupt — for whole-file reads (copies, restores) that
    /// would hit every block.
    fn check_fully_readable(&self) -> VfsResult<()> {
        self.check_readable()?;
        if !self.corrupt_blocks.is_empty() {
            return Err(VfsError::Corrupt(self.path.clone()));
        }
        Ok(())
    }

    fn is_corrupt(&self) -> bool {
        self.corrupt || !self.corrupt_blocks.is_empty()
    }

    fn size_bytes(&self) -> u64 {
        match &self.content {
            Content::Blocks { block_size, nblocks, .. } => *nblocks * *block_size as u64,
            Content::Append { len, .. } => *len,
        }
    }
}

/// Selects which files a storage fault applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileMatch {
    /// Exactly the live file with this path.
    Path(String),
    /// Any file of this kind.
    Kind(FileKind),
}

impl FileMatch {
    fn matches(&self, path: &str, kind: FileKind) -> bool {
        match self {
            FileMatch::Path(p) => p == path,
            FileMatch::Kind(k) => *k == kind,
        }
    }
}

/// A storage fault armed on the filesystem via [`SimFs::arm_fault`].
///
/// These model the hardware/OS end of the faultload — what a flaky disk or
/// an abrupt power loss does underneath the DBMS — as opposed to the
/// operator faults injected by path (`delete_path` / `corrupt_path`).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultArm {
    /// One-shot **torn block write**: the next block write to a matching
    /// file silently persists only the first `keep_num/keep_den` of the new
    /// image; the rest of the block keeps its previous contents. The caller
    /// is told the write succeeded — only a checksum can catch it.
    TornWrite { target: FileMatch, keep_num: u32, keep_den: u32 },
    /// One-shot **interrupted append**: the next append to a matching file
    /// persists only the first `keep_num/keep_den` of its bytes and then
    /// fails with [`VfsError::Interrupted`] — a torn tail is left on disk
    /// and the caller knows the write did not complete.
    PartialAppend { target: FileMatch, keep_num: u32, keep_den: u32 },
    /// Immediate **silent bit-rot**: flips one bit of one already-written
    /// block of the first matching block file, chosen deterministically
    /// from `seed`. Applied when armed; no error is ever returned by the
    /// filesystem — detection is entirely up to block checksums.
    BitRot { target: FileMatch, seed: u64 },
    /// **Disk full** (`ENOSPC`): after `after_bytes` more bytes are
    /// written to `disk`, every subsequent write to it fails with
    /// [`VfsError::DiskFull`] until the arm is cleared.
    DiskFull { disk: DiskId, after_bytes: u64 },
    /// **Limping disk**: every I/O on `disk` is charged `multiplier` times
    /// its normal service demand (the disk internally retries, so its byte
    /// counters inflate accordingly). A multiplier of 0 or 1 clears it.
    SlowIo { disk: DiskId, multiplier: u32 },
    /// **Crash at a write point**: counting durable writes (block writes
    /// and appends) from the moment of arming, the `nth` one (1-based)
    /// persists only `keep_num/keep_den` of its bytes and fails with
    /// [`VfsError::Interrupted`]; every write after it fails the same way
    /// until [`SimFs::clear_faults`] — the machine is dead. Used by the
    /// crash-at-every-write-point sweep.
    CrashAtWrite { nth: u64, keep_num: u32, keep_den: u32 },
}

/// Armed-fault bookkeeping. Lives on the [`SimFs`] and is cloned with it
/// into snapshots; the snapshot identity hashes file metadata only, so this
/// state never perturbs [`SnapshotId`](crate::SnapshotId)s.
#[derive(Debug, Clone, Default)]
struct FaultState {
    /// Durable-write attempts (block writes + appends) observed over the
    /// filesystem's lifetime; the write-point sweep enumerates sites with
    /// this counter.
    writes_observed: u64,
    torn: Option<(FileMatch, u32, u32)>,
    partial: Option<(FileMatch, u32, u32)>,
    /// Remaining write budget per disk index; once 0, writes fail ENOSPC.
    full: BTreeMap<usize, u64>,
    /// Service-demand multiplier per disk index (absent = 1).
    slow: BTreeMap<usize, u32>,
    /// Writes left until the armed crash fires, plus the tear fraction.
    crash_in: Option<(u64, u32, u32)>,
    crash_fired: bool,
}

/// Deterministic 64-bit mixer (splitmix64 finalizer) used to derive fault
/// targets from seeds without a RNG dependency.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Fraction `num/den` of `len`, clamped to `len`; `den == 0` keeps nothing.
fn keep_bytes(len: usize, num: u32, den: u32) -> usize {
    if den == 0 {
        return 0;
    }
    ((len as u128 * num as u128 / den as u128) as usize).min(len)
}

/// The simulated filesystem: a set of disks and the files on them.
///
/// ```
/// use recobench_sim::{DiskProfile, SimTime};
/// use recobench_vfs::{FileKind, SimFs};
///
/// let mut fs = SimFs::new(vec![DiskProfile::server_2000()]);
/// let disk = fs.disk_ids()[0];
/// let f = fs.create_block_file("/u01/system01.dbf", disk, FileKind::Data, 8192, 16)?;
/// let (done, _) = fs.write_block(f, 3, vec![7u8; 8192].into(), SimTime::ZERO)?;
/// let (_, img) = fs.read_block(f, 3, done)?;
/// assert_eq!(img[0], 7);
/// # Ok::<(), recobench_vfs::VfsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimFs {
    disks: Vec<Disk>,
    files: BTreeMap<FileId, FileEntry>,
    next_id: u64,
    faults: FaultState,
    /// Caller sites (source file, 1-based line) that invoked a durable
    /// write entry point (`write_block` / `append` / `append_padded`),
    /// captured via `#[track_caller]`. Feeds the write-site coverage
    /// manifest the crash sweep cross-checks against `tidy
    /// --write-sites`; deliberately NOT reset by
    /// [`SimFs::clear_faults`], so sites observed before a crash survive
    /// the recovery run.
    write_sites: BTreeSet<(&'static str, u32)>,
}

impl SimFs {
    /// Creates a filesystem with one disk per profile.
    pub fn new(profiles: Vec<DiskProfile>) -> Self {
        SimFs {
            disks: profiles.into_iter().map(Disk::new).collect(),
            files: BTreeMap::new(),
            next_id: 1,
            faults: FaultState::default(),
            write_sites: BTreeSet::new(),
        }
    }

    /// Handles of all disks, in creation order.
    pub fn disk_ids(&self) -> Vec<DiskId> {
        (0..self.disks.len()).map(DiskId).collect()
    }

    /// Cumulative I/O counters for `disk`.
    ///
    /// # Errors
    ///
    /// Fails if `disk` does not exist.
    pub fn disk_stats(&self, disk: DiskId) -> VfsResult<DiskStats> {
        self.disks.get(disk.0).map(|d| d.stats()).ok_or(VfsError::DiskUnavailable(disk.0))
    }

    fn disk_mut(&mut self, disk: DiskId) -> VfsResult<&mut Disk> {
        self.disks.get_mut(disk.0).ok_or(VfsError::DiskUnavailable(disk.0))
    }

    fn alloc_id(&mut self) -> FileId {
        let id = FileId(self.next_id);
        self.next_id += 1;
        id
    }

    fn entry(&self, id: FileId) -> VfsResult<&FileEntry> {
        self.files.get(&id).ok_or_else(|| VfsError::NotFound(format!("file #{}", id.0)))
    }

    fn entry_mut(&mut self, id: FileId) -> VfsResult<&mut FileEntry> {
        self.files.get_mut(&id).ok_or_else(|| VfsError::NotFound(format!("file #{}", id.0)))
    }

    fn check_path_free(&self, path: &str) -> VfsResult<()> {
        let exists = self.files.values().any(|f| f.path == path && !f.deleted);
        if exists {
            Err(VfsError::AlreadyExists(path.to_string()))
        } else {
            Ok(())
        }
    }

    /// Creates a block-addressed file of `nblocks` blocks of `block_size`
    /// bytes. Blocks read back as zeroes until written.
    ///
    /// # Errors
    ///
    /// Fails if the path is taken or the disk does not exist.
    pub fn create_block_file(
        &mut self,
        path: &str,
        disk: DiskId,
        kind: FileKind,
        block_size: u32,
        nblocks: u64,
    ) -> VfsResult<FileId> {
        self.check_path_free(path)?;
        if disk.0 >= self.disks.len() {
            return Err(VfsError::DiskUnavailable(disk.0));
        }
        let id = self.alloc_id();
        self.files.insert(
            id,
            FileEntry {
                path: path.to_string(),
                disk,
                kind,
                deleted: false,
                corrupt: false,
                corrupt_blocks: BTreeSet::new(),
                content: Content::Blocks { block_size, nblocks, data: BTreeMap::new() },
            },
        );
        Ok(id)
    }

    /// Creates an empty append-only file.
    ///
    /// # Errors
    ///
    /// Fails if the path is taken or the disk does not exist.
    pub fn create_append_file(&mut self, path: &str, disk: DiskId, kind: FileKind) -> VfsResult<FileId> {
        self.check_path_free(path)?;
        if disk.0 >= self.disks.len() {
            return Err(VfsError::DiskUnavailable(disk.0));
        }
        let id = self.alloc_id();
        self.files.insert(
            id,
            FileEntry {
                path: path.to_string(),
                disk,
                kind,
                deleted: false,
                corrupt: false,
                corrupt_blocks: BTreeSet::new(),
                content: Content::Append { segments: Vec::new(), len: 0 },
            },
        );
        Ok(id)
    }

    /// Reads one block. Returns the completion instant and the block image.
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted, corrupt, not block-addressed,
    /// or the index is out of range.
    pub fn read_block(&mut self, id: FileId, block: u64, now: SimTime) -> VfsResult<(SimTime, Bytes)> {
        let (disk, bytes, img) = {
            let e = self.entry(id)?;
            e.check_readable()?;
            if e.corrupt_blocks.contains(&block) {
                return Err(VfsError::Corrupt(e.path.clone()));
            }
            match &e.content {
                Content::Blocks { block_size, nblocks, data } => {
                    if block >= *nblocks {
                        return Err(VfsError::OutOfRange {
                            file: e.path.clone(),
                            block,
                            blocks: *nblocks,
                        });
                    }
                    let img = data
                        .get(&block)
                        .cloned()
                        .unwrap_or_else(|| Bytes::from(vec![0u8; *block_size as usize]));
                    (e.disk, *block_size as u64, img)
                }
                Content::Append { .. } => return Err(VfsError::WrongAccessStyle(e.path.clone())),
            }
        };
        let done = self.charge(disk, IoKind::Read, bytes, false, now)?;
        Ok((done, img))
    }

    /// Writes one block. Returns the completion instant.
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted, corrupt, not block-addressed,
    /// or the index is out of range.
    #[track_caller]
    pub fn write_block(
        &mut self,
        id: FileId,
        block: u64,
        image: Bytes,
        now: SimTime,
    ) -> VfsResult<(SimTime, ())> {
        self.note_write_site();
        let (disk, bytes, path, kind) = {
            let e = self.entry(id)?;
            if e.deleted {
                return Err(VfsError::Deleted(e.path.clone()));
            }
            match &e.content {
                Content::Blocks { block_size, nblocks, .. } => {
                    if block >= *nblocks {
                        return Err(VfsError::OutOfRange {
                            file: e.path.clone(),
                            block,
                            blocks: *nblocks,
                        });
                    }
                    (e.disk, *block_size as u64, e.path.clone(), e.kind)
                }
                Content::Append { .. } => return Err(VfsError::WrongAccessStyle(e.path.clone())),
            }
        };
        self.faults.writes_observed += 1;
        let crash = self.crash_gate(&path)?;
        self.consume_disk_budget(disk, bytes, &path)?;
        let tear = crash.or_else(|| self.take_one_shot_torn(&path, kind));
        let persisted = match tear {
            None => image,
            Some((num, den)) => {
                // The prefix of the new image lands; the tail of whatever
                // was on the platter before survives underneath it.
                let k = keep_bytes(image.len(), num, den);
                let old = match &self.entry(id)?.content {
                    Content::Blocks { data, .. } => data.get(&block).cloned().unwrap_or_default(),
                    // tidy-allow(panic-freedom): content kind is fixed at create and validated on entry to write_block
                    Content::Append { .. } => unreachable!("validated as a block file"),
                };
                // tidy-allow(panic-freedom): keep_bytes clamps k to image.len()
                let mut buf = image[..k].to_vec();
                if old.len() > k {
                    buf.extend_from_slice(&old[k..]);
                }
                Bytes::from(buf)
            }
        };
        {
            let e = self.entry_mut(id)?;
            e.corrupt_blocks.remove(&block);
            match &mut e.content {
                Content::Blocks { data, .. } => {
                    data.insert(block, persisted);
                }
                // tidy-allow(panic-freedom): content kind is fixed at create and validated on entry to write_block
                Content::Append { .. } => unreachable!("validated as a block file"),
            }
        }
        let done = self.charge(disk, IoKind::Write, bytes, false, now)?;
        if crash.is_some() {
            return Err(VfsError::Interrupted(path));
        }
        Ok((done, ()))
    }

    /// Appends `data` to an append-only file (sequential write).
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted or not append-only.
    #[track_caller]
    pub fn append(&mut self, id: FileId, data: Bytes, now: SimTime) -> VfsResult<(SimTime, ())> {
        // `#[track_caller]` is transitive: the inner call records the
        // caller of `append`, not this line.
        self.append_padded(id, data, 0, now)
    }

    /// Appends `data` plus `pad` additional accounting-only bytes.
    ///
    /// The pad inflates the file's logical length and the charged I/O time
    /// but carries no information (the engine uses it to model block-level
    /// redo change vectors without materialising filler). Reads charge the
    /// padded length and return only the informative bytes.
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted or not append-only.
    #[track_caller]
    pub fn append_padded(
        &mut self,
        id: FileId,
        data: Bytes,
        pad: u64,
        now: SimTime,
    ) -> VfsResult<(SimTime, ())> {
        self.note_write_site();
        let (disk, path, kind) = {
            let e = self.entry(id)?;
            if e.deleted {
                return Err(VfsError::Deleted(e.path.clone()));
            }
            match &e.content {
                Content::Append { .. } => (e.disk, e.path.clone(), e.kind),
                Content::Blocks { .. } => return Err(VfsError::WrongAccessStyle(e.path.clone())),
            }
        };
        let n = data.len() as u64 + pad;
        self.faults.writes_observed += 1;
        let crash = self.crash_gate(&path)?;
        let partial = if crash.is_none() { self.take_one_shot_partial(&path, kind) } else { None };
        let tear = crash.or(partial);
        self.consume_disk_budget(disk, n, &path)?;
        let (persist, charged) = match tear {
            None => (data, n),
            Some((num, den)) => {
                // The write stops `num/den` of the way through the padded
                // span; only the informative bytes inside the kept prefix
                // reach the platter.
                let k = keep_bytes(n as usize, num, den) as u64;
                (data.slice(0..k.min(data.len() as u64) as usize), k)
            }
        };
        {
            let e = self.entry_mut(id)?;
            match &mut e.content {
                Content::Append { segments, len } => {
                    *len += charged;
                    if !persist.is_empty() {
                        segments.push(persist);
                    }
                }
                // tidy-allow(panic-freedom): content kind is fixed at create and validated on entry to append
                Content::Blocks { .. } => unreachable!("validated as an append file"),
            }
        }
        let done = self.charge(disk, IoKind::Write, charged.max(1), true, now)?;
        if tear.is_some() {
            return Err(VfsError::Interrupted(path));
        }
        Ok((done, ()))
    }

    /// Reads the whole contents of an append-only file (sequential read).
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted, corrupt or not append-only.
    pub fn read_all(&mut self, id: FileId, now: SimTime) -> VfsResult<(SimTime, Vec<Bytes>)> {
        let (disk, bytes, segs) = {
            let e = self.entry(id)?;
            e.check_readable()?;
            match &e.content {
                Content::Append { segments, len } => (e.disk, *len, segments.clone()),
                Content::Blocks { .. } => return Err(VfsError::WrongAccessStyle(e.path.clone())),
            }
        };
        let done = self.charge(disk, IoKind::Read, bytes, true, now)?;
        Ok((done, segs))
    }

    /// Reads an append-only file starting at logical byte `offset`
    /// (sequential read charged for `len - offset` bytes). The returned
    /// segments are the *complete* informative contents — callers that need
    /// to skip the prefix do so while decoding; only the I/O charge honours
    /// the offset.
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted, corrupt or not append-only.
    pub fn read_from(&mut self, id: FileId, offset: u64, now: SimTime) -> VfsResult<(SimTime, Vec<Bytes>)> {
        let (disk, bytes, segs) = {
            let e = self.entry(id)?;
            e.check_readable()?;
            match &e.content {
                Content::Append { segments, len } => {
                    (e.disk, len.saturating_sub(offset), segments.clone())
                }
                Content::Blocks { .. } => return Err(VfsError::WrongAccessStyle(e.path.clone())),
            }
        };
        let done = self.charge(disk, IoKind::Read, bytes, true, now)?;
        Ok((done, segs))
    }

    /// Zero-cost inspection of one block, for analysis tooling (integrity
    /// checkers, index rebuild) that must not perturb the simulated timing.
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted, corrupt or the index is out
    /// of range.
    pub fn peek_block(&self, id: FileId, block: u64) -> VfsResult<Bytes> {
        let e = self.entry(id)?;
        e.check_readable()?;
        if e.corrupt_blocks.contains(&block) {
            return Err(VfsError::Corrupt(e.path.clone()));
        }
        match &e.content {
            Content::Blocks { block_size, nblocks, data } => {
                if block >= *nblocks {
                    return Err(VfsError::OutOfRange { file: e.path.clone(), block, blocks: *nblocks });
                }
                Ok(data
                    .get(&block)
                    .cloned()
                    .unwrap_or_else(|| Bytes::from(vec![0u8; *block_size as usize])))
            }
            Content::Append { .. } => Err(VfsError::WrongAccessStyle(e.path.clone())),
        }
    }

    /// Zero-cost enumeration of every written block of a block file (for
    /// machine-to-machine transfers such as stand-by instantiation).
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted, corrupt or not
    /// block-addressed.
    pub fn peek_blocks_written(&self, id: FileId) -> VfsResult<Vec<(u64, Bytes)>> {
        let e = self.entry(id)?;
        e.check_fully_readable()?;
        match &e.content {
            Content::Blocks { data, .. } => Ok(data.iter().map(|(b, img)| (*b, img.clone())).collect()),
            Content::Append { .. } => Err(VfsError::WrongAccessStyle(e.path.clone())),
        }
    }

    /// Zero-cost inspection of an append-only file's contents.
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted, corrupt or not append-only.
    pub fn peek_all(&self, id: FileId) -> VfsResult<Vec<Bytes>> {
        let e = self.entry(id)?;
        e.check_readable()?;
        match &e.content {
            Content::Append { segments, .. } => Ok(segments.clone()),
            Content::Blocks { .. } => Err(VfsError::WrongAccessStyle(e.path.clone())),
        }
    }

    /// Charges `bytes` of synthetic sequential I/O on `disk` without
    /// touching any file. Used to model volume the scaled database does not
    /// materialise (e.g. restoring the nominal-size database from backup).
    ///
    /// # Errors
    ///
    /// Fails if the disk does not exist.
    pub fn charge_io(&mut self, disk: DiskId, kind: IoKind, bytes: u64, now: SimTime) -> VfsResult<SimTime> {
        self.charge(disk, kind, bytes, true, now)
    }

    /// Truncates an append-only file to empty (instantaneous metadata op).
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted or not append-only.
    pub fn truncate(&mut self, id: FileId) -> VfsResult<()> {
        let e = self.entry_mut(id)?;
        if e.deleted {
            return Err(VfsError::Deleted(e.path.clone()));
        }
        match &mut e.content {
            Content::Append { segments, len } => {
                segments.clear();
                *len = 0;
                Ok(())
            }
            Content::Blocks { .. } => Err(VfsError::WrongAccessStyle(e.path.clone())),
        }
    }

    /// Marks a file deleted **by path** — the operator's view of the world.
    ///
    /// The content is dropped immediately; subsequent reads and writes fail.
    ///
    /// # Errors
    ///
    /// Fails if no live file has this path.
    pub fn delete_path(&mut self, path: &str) -> VfsResult<FileId> {
        let id = self.lookup(path)?;
        let e = self.entry_mut(id)?;
        e.deleted = true;
        e.content = match &e.content {
            Content::Blocks { block_size, nblocks, .. } => {
                Content::Blocks { block_size: *block_size, nblocks: *nblocks, data: BTreeMap::new() }
            }
            Content::Append { .. } => Content::Append { segments: Vec::new(), len: 0 },
        };
        Ok(id)
    }

    /// Corrupts a file's contents **by path** — block-granular and
    /// deterministic per `seed`.
    ///
    /// For a block file with written blocks, `1 + seed % 3` of them (chosen
    /// deterministically from `seed`) become individually unreadable; the
    /// rest of the file stays readable, so shrunk fault schedules keep the
    /// damage minimal. Overwriting a damaged block heals it. Append files —
    /// and block files nothing has been written to — fall back to the old
    /// whole-file corrupt mark. Returns the id and the damaged block
    /// indexes (empty for the whole-file fallback).
    ///
    /// # Errors
    ///
    /// Fails if no live file has this path.
    pub fn corrupt_path(&mut self, path: &str, seed: u64) -> VfsResult<(FileId, Vec<u64>)> {
        let id = self.lookup(path)?;
        let e = self.entry_mut(id)?;
        let written: Vec<u64> = match &e.content {
            Content::Blocks { data, .. } => data.keys().copied().collect(),
            Content::Append { .. } => Vec::new(),
        };
        if written.is_empty() {
            e.corrupt = true;
            return Ok((id, Vec::new()));
        }
        let n_damage = (1 + mix64(seed) % 3).min(written.len() as u64);
        let mut damaged = Vec::new();
        for i in 0..n_damage {
            let block = written[(mix64(seed ^ (i + 1)) % written.len() as u64) as usize];
            if e.corrupt_blocks.insert(block) {
                damaged.push(block);
            }
        }
        damaged.sort_unstable();
        Ok((id, damaged))
    }

    /// Block indexes of `id` currently marked individually corrupt.
    ///
    /// # Errors
    ///
    /// Fails if the id has been purged.
    pub fn corrupt_blocks(&self, id: FileId) -> VfsResult<Vec<u64>> {
        Ok(self.entry(id)?.corrupt_blocks.iter().copied().collect())
    }

    /// Removes a file entry entirely (e.g. dropping an archived log after a
    /// successful backup cycle). Unlike [`SimFs::delete_path`] this frees
    /// the path for reuse.
    ///
    /// # Errors
    ///
    /// Fails if the file does not exist.
    pub fn purge(&mut self, id: FileId) -> VfsResult<()> {
        self.files.remove(&id).map(|_| ()).ok_or_else(|| VfsError::NotFound(format!("file #{}", id.0)))
    }

    /// Finds a live (non-deleted) file by path.
    ///
    /// # Errors
    ///
    /// Fails if the path does not name a live file.
    pub fn lookup(&self, path: &str) -> VfsResult<FileId> {
        self.files
            .iter()
            .find(|(_, f)| f.path == path && !f.deleted)
            .map(|(id, _)| *id)
            .ok_or_else(|| VfsError::NotFound(path.to_string()))
    }

    /// Metadata snapshot for a file (works for deleted files too, so damage
    /// assessment can see what was lost).
    ///
    /// # Errors
    ///
    /// Fails if the id has been purged.
    pub fn meta(&self, id: FileId) -> VfsResult<FileMeta> {
        let e = self.entry(id)?;
        Ok(FileMeta {
            id,
            path: e.path.clone(),
            disk: e.disk,
            kind: e.kind,
            size_bytes: e.size_bytes(),
            deleted: e.deleted,
            corrupt: e.is_corrupt(),
        })
    }

    /// Metadata for every file, in creation order. The snapshot layer
    /// derives its deterministic identity from this listing.
    pub fn file_metas(&self) -> Vec<FileMeta> {
        self.files
            .iter()
            .map(|(id, f)| FileMeta {
                id: *id,
                path: f.path.clone(),
                disk: f.disk,
                kind: f.kind,
                size_bytes: f.size_bytes(),
                deleted: f.deleted,
                corrupt: f.is_corrupt(),
            })
            .collect()
    }

    /// Metadata for every file of the given kind, in creation order.
    pub fn list(&self, kind: FileKind) -> Vec<FileMeta> {
        self.files
            .iter()
            .filter(|(_, f)| f.kind == kind)
            .map(|(id, f)| FileMeta {
                id: *id,
                path: f.path.clone(),
                disk: f.disk,
                kind: f.kind,
                size_bytes: f.size_bytes(),
                deleted: f.deleted,
                corrupt: f.is_corrupt(),
            })
            .collect()
    }

    /// Duplicates the *contents* of `src` into a fresh file at `dst_path` on
    /// `dst_disk`, charging a sequential read on the source disk and a
    /// sequential write on the destination disk. Returns the new file's id
    /// and the completion instant (the later of the two transfers).
    ///
    /// # Errors
    ///
    /// Fails if the source is unreadable or the destination path is taken.
    pub fn copy_file(
        &mut self,
        src: FileId,
        dst_path: &str,
        dst_disk: DiskId,
        dst_kind: FileKind,
        now: SimTime,
    ) -> VfsResult<(SimTime, FileId)> {
        let (src_disk, size, content) = {
            let e = self.entry(src)?;
            e.check_fully_readable()?;
            (e.disk, e.size_bytes(), e.content.clone())
        };
        self.check_path_free(dst_path)?;
        if dst_disk.0 >= self.disks.len() {
            return Err(VfsError::DiskUnavailable(dst_disk.0));
        }
        self.consume_disk_budget(dst_disk, size, dst_path)?;
        let read_done = self.charge(src_disk, IoKind::Read, size, true, now)?;
        let write_done = self.charge(dst_disk, IoKind::Write, size, true, now)?;
        let id = self.alloc_id();
        self.files.insert(
            id,
            FileEntry {
                path: dst_path.to_string(),
                disk: dst_disk,
                kind: dst_kind,
                deleted: false,
                corrupt: false,
                corrupt_blocks: BTreeSet::new(),
                content,
            },
        );
        Ok((read_done.max(write_done), id))
    }

    /// Overwrites the contents of `dst` with the contents of `src`
    /// (restore-from-backup), charging both disks. The destination keeps its
    /// path, kind and id, and any deleted/corrupt marks are cleared.
    ///
    /// # Errors
    ///
    /// Fails if either file is missing or the source is unreadable.
    pub fn restore_into(&mut self, src: FileId, dst: FileId, now: SimTime) -> VfsResult<SimTime> {
        let (src_disk, size, content) = {
            let e = self.entry(src)?;
            e.check_fully_readable()?;
            (e.disk, e.size_bytes(), e.content.clone())
        };
        let dst_disk = self.entry(dst)?.disk;
        self.consume_disk_budget(dst_disk, size, "restore destination")?;
        {
            let e = self.entry_mut(dst)?;
            e.content = content;
            e.deleted = false;
            e.corrupt = false;
            e.corrupt_blocks.clear();
        }
        let read_done = self.charge(src_disk, IoKind::Read, size, true, now)?;
        let write_done = self.charge(dst_disk, IoKind::Write, size, true, now)?;
        Ok(read_done.max(write_done))
    }

    // ---- storage-fault layer -------------------------------------------

    /// Arms a storage fault. One-shot arms ([`FaultArm::TornWrite`],
    /// [`FaultArm::PartialAppend`], [`FaultArm::CrashAtWrite`]) replace any
    /// previously armed fault of the same kind; [`FaultArm::BitRot`] is
    /// applied immediately; [`FaultArm::DiskFull`] and [`FaultArm::SlowIo`]
    /// stay in force until cleared.
    ///
    /// # Errors
    ///
    /// Fails if the arm names a disk that does not exist, if a crash arm
    /// asks for the 0th write, or if a bit-rot arm matches no block file
    /// with written blocks.
    pub fn arm_fault(&mut self, arm: FaultArm) -> VfsResult<()> {
        match arm {
            FaultArm::TornWrite { target, keep_num, keep_den } => {
                self.faults.torn = Some((target, keep_num, keep_den));
            }
            FaultArm::PartialAppend { target, keep_num, keep_den } => {
                self.faults.partial = Some((target, keep_num, keep_den));
            }
            FaultArm::BitRot { target, seed } => return self.apply_bit_rot(&target, seed),
            FaultArm::DiskFull { disk, after_bytes } => {
                if disk.0 >= self.disks.len() {
                    return Err(VfsError::DiskUnavailable(disk.0));
                }
                self.faults.full.insert(disk.0, after_bytes);
            }
            FaultArm::SlowIo { disk, multiplier } => {
                if disk.0 >= self.disks.len() {
                    return Err(VfsError::DiskUnavailable(disk.0));
                }
                if multiplier <= 1 {
                    self.faults.slow.remove(&disk.0);
                } else {
                    self.faults.slow.insert(disk.0, multiplier);
                }
            }
            FaultArm::CrashAtWrite { nth, keep_num, keep_den } => {
                if nth == 0 {
                    return Err(VfsError::NotFound("crash-at-write point 0".to_string()));
                }
                self.faults.crash_in = Some((nth, keep_num, keep_den));
                self.faults.crash_fired = false;
            }
        }
        Ok(())
    }

    /// Disarms every armed storage fault (the dead machine comes back, the
    /// full disk gets space, the limping disk is replaced). The lifetime
    /// write counter is **not** reset.
    pub fn clear_faults(&mut self) {
        let writes = self.faults.writes_observed;
        self.faults = FaultState { writes_observed: writes, ..FaultState::default() };
    }

    /// Durable-write attempts (block writes and appends) observed over the
    /// filesystem's lifetime. The crash-at-every-write-point sweep
    /// enumerates crash sites with this counter.
    pub fn writes_observed(&self) -> u64 {
        self.faults.writes_observed
    }

    /// Records the `#[track_caller]` location of the durable-write entry
    /// point currently executing. Its own `#[track_caller]` keeps the
    /// attribution on the *external* caller of `write_block`/`append*`.
    #[track_caller]
    fn note_write_site(&mut self) {
        let loc = std::panic::Location::caller();
        self.write_sites.insert((loc.file(), loc.line()));
    }

    /// Every caller site (source file, 1-based line) that has invoked a
    /// durable-write entry point on this filesystem, sorted. The
    /// write-point sweep unions these across its runs into the coverage
    /// manifest that `tidy --write-sites` is checked against.
    pub fn write_sites_observed(&self) -> Vec<(&'static str, u32)> {
        self.write_sites.iter().copied().collect()
    }

    /// Whether an armed [`FaultArm::CrashAtWrite`] has fired.
    pub fn crash_write_fired(&self) -> bool {
        self.faults.crash_fired
    }

    /// Whether a one-shot write fault (torn write, partial append, or
    /// crash-at-write) is still armed and waiting for its trigger. Fault
    /// harnesses poll this to learn when the damage has landed.
    pub fn fault_pending(&self) -> bool {
        self.faults.torn.is_some()
            || self.faults.partial.is_some()
            || self.faults.crash_in.is_some()
    }

    /// Flips one bit of one written block of the first live file matching
    /// `target`, chosen deterministically from `seed`.
    fn apply_bit_rot(&mut self, target: &FileMatch, seed: u64) -> VfsResult<()> {
        let victim = self.files.iter_mut().find_map(|(_, e)| {
            if e.deleted || !target.matches(&e.path, e.kind) {
                return None;
            }
            match &mut e.content {
                Content::Blocks { data, .. } if !data.is_empty() => Some(data),
                _ => None,
            }
        });
        let Some(data) = victim else {
            return Err(VfsError::NotFound("bit-rot target with written blocks".to_string()));
        };
        let keys: Vec<u64> = data.keys().copied().collect();
        let block = keys[(mix64(seed) % keys.len() as u64) as usize];
        let img = data.get(&block).expect("chosen from written keys");
        if img.is_empty() {
            return Err(VfsError::NotFound("bit-rot target block is empty".to_string()));
        }
        let bit = mix64(seed ^ 0x5bd1_e995) % (img.len() as u64 * 8);
        let mut buf = img.to_vec();
        buf[(bit / 8) as usize] ^= 1 << (bit % 8);
        data.insert(block, Bytes::from(buf));
        Ok(())
    }

    /// Charges an I/O on `disk`, honouring any armed slow-I/O multiplier: a
    /// limping disk internally retries the whole operation `multiplier`
    /// times, so both its service time and its byte counters inflate.
    fn charge(
        &mut self,
        disk: DiskId,
        kind: IoKind,
        bytes: u64,
        sequential: bool,
        now: SimTime,
    ) -> VfsResult<SimTime> {
        let mult = (*self.faults.slow.get(&disk.0).unwrap_or(&1)).max(1);
        let d = self.disk_mut(disk)?;
        let mut done = now;
        for _ in 0..mult {
            done = d.submit(done, kind, bytes, sequential);
        }
        Ok(done)
    }

    /// Debits an ENOSPC budget if one is armed on `disk`.
    fn consume_disk_budget(&mut self, disk: DiskId, bytes: u64, path: &str) -> VfsResult<()> {
        if let Some(rem) = self.faults.full.get_mut(&disk.0) {
            if *rem < bytes {
                *rem = 0;
                return Err(VfsError::DiskFull { disk: disk.0, path: path.to_string() });
            }
            *rem -= bytes;
        }
        Ok(())
    }

    /// Counts down an armed crash point. Returns the tear fraction when
    /// this write is the crash point; errors when the machine is already
    /// dead.
    fn crash_gate(&mut self, path: &str) -> VfsResult<Option<(u32, u32)>> {
        if self.faults.crash_fired {
            return Err(VfsError::Interrupted(path.to_string()));
        }
        if let Some((left, num, den)) = &mut self.faults.crash_in {
            *left -= 1;
            if *left == 0 {
                let frac = (*num, *den);
                self.faults.crash_in = None;
                self.faults.crash_fired = true;
                return Ok(Some(frac));
            }
        }
        Ok(None)
    }

    fn take_one_shot_torn(&mut self, path: &str, kind: FileKind) -> Option<(u32, u32)> {
        match self.faults.torn.take() {
            Some((t, num, den)) if t.matches(path, kind) => Some((num, den)),
            other => {
                self.faults.torn = other;
                None
            }
        }
    }

    fn take_one_shot_partial(&mut self, path: &str, kind: FileKind) -> Option<(u32, u32)> {
        match self.faults.partial.take() {
            Some((t, num, den)) if t.matches(path, kind) => Some((num, den)),
            other => {
                self.faults.partial = other;
                None
            }
        }
    }
}

/// A filesystem handle shareable between the primary instance, the stand-by
/// instance and the fault injector.
pub type SharedFs = Arc<Mutex<SimFs>>;

/// Wraps a [`SimFs`] for sharing.
pub fn shared(fs: SimFs) -> SharedFs {
    Arc::new(Mutex::new(fs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs4() -> SimFs {
        SimFs::new(vec![DiskProfile::server_2000(); 4])
    }

    #[test]
    fn block_file_round_trip() {
        let mut fs = fs4();
        let f = fs.create_block_file("/u01/a.dbf", DiskId(0), FileKind::Data, 8192, 4).unwrap();
        let img = Bytes::from(vec![5u8; 8192]);
        let (t1, ()) = fs.write_block(f, 2, img.clone(), SimTime::ZERO).unwrap();
        let (_, got) = fs.read_block(f, 2, t1).unwrap();
        assert_eq!(got, img);
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let mut fs = fs4();
        let f = fs.create_block_file("/u01/a.dbf", DiskId(0), FileKind::Data, 512, 2).unwrap();
        let (_, got) = fs.read_block(f, 0, SimTime::ZERO).unwrap();
        assert!(got.iter().all(|&b| b == 0));
        assert_eq!(got.len(), 512);
    }

    #[test]
    fn out_of_range_block_fails() {
        let mut fs = fs4();
        let f = fs.create_block_file("/u01/a.dbf", DiskId(0), FileKind::Data, 512, 2).unwrap();
        let err = fs.read_block(f, 2, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, VfsError::OutOfRange { block: 2, blocks: 2, .. }));
    }

    #[test]
    fn append_and_read_all() {
        let mut fs = fs4();
        let f = fs.create_append_file("/u03/redo01.log", DiskId(2), FileKind::Redo).unwrap();
        fs.append(f, Bytes::from_static(b"one"), SimTime::ZERO).unwrap();
        fs.append(f, Bytes::from_static(b"two"), SimTime::ZERO).unwrap();
        let (_, segs) = fs.read_all(f, SimTime::ZERO).unwrap();
        assert_eq!(segs, vec![Bytes::from_static(b"one"), Bytes::from_static(b"two")]);
        assert_eq!(fs.meta(f).unwrap().size_bytes, 6);
    }

    #[test]
    fn truncate_resets_append_file() {
        let mut fs = fs4();
        let f = fs.create_append_file("/u03/redo01.log", DiskId(2), FileKind::Redo).unwrap();
        fs.append(f, Bytes::from_static(b"abc"), SimTime::ZERO).unwrap();
        fs.truncate(f).unwrap();
        assert_eq!(fs.meta(f).unwrap().size_bytes, 0);
    }

    #[test]
    fn delete_path_makes_reads_fail() {
        let mut fs = fs4();
        let f = fs.create_block_file("/u02/users01.dbf", DiskId(1), FileKind::Data, 512, 2).unwrap();
        fs.delete_path("/u02/users01.dbf").unwrap();
        let err = fs.read_block(f, 0, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, VfsError::Deleted(_)));
        // Path is gone from lookup.
        assert!(fs.lookup("/u02/users01.dbf").is_err());
        // But metadata is still inspectable for damage assessment.
        assert!(fs.meta(f).unwrap().deleted);
    }

    #[test]
    fn corrupt_path_fails_reads_but_not_meta() {
        let mut fs = fs4();
        let f = fs.create_block_file("/u02/users01.dbf", DiskId(1), FileKind::Data, 512, 2).unwrap();
        // No blocks written yet: falls back to the whole-file corrupt mark.
        let (_, damaged) = fs.corrupt_path("/u02/users01.dbf", 42).unwrap();
        assert!(damaged.is_empty());
        assert!(matches!(fs.read_block(f, 0, SimTime::ZERO).unwrap_err(), VfsError::Corrupt(_)));
        assert!(fs.meta(f).unwrap().corrupt);
    }

    #[test]
    fn corrupt_path_is_block_granular_and_deterministic() {
        let mk = || {
            let mut fs = fs4();
            let f = fs.create_block_file("/u02/u.dbf", DiskId(1), FileKind::Data, 512, 8).unwrap();
            for b in 0..8 {
                fs.write_block(f, b, Bytes::from(vec![b as u8 + 1; 512]), SimTime::ZERO).unwrap();
            }
            (fs, f)
        };
        let (mut fs, f) = mk();
        let (_, damaged) = fs.corrupt_path("/u02/u.dbf", 9).unwrap();
        assert!(!damaged.is_empty() && damaged.len() <= 3);
        let (mut fs2, _) = mk();
        let (_, damaged2) = fs2.corrupt_path("/u02/u.dbf", 9).unwrap();
        assert_eq!(damaged, damaged2, "same seed damages the same blocks");
        // Damaged blocks fail, the rest of the file stays readable.
        assert!(matches!(fs.read_block(f, damaged[0], SimTime::ZERO).unwrap_err(), VfsError::Corrupt(_)));
        let healthy = (0..8).find(|b| !damaged.contains(b)).unwrap();
        assert!(fs.read_block(f, healthy, SimTime::ZERO).is_ok());
        assert!(fs.meta(f).unwrap().corrupt, "metadata still reports damage");
        assert_eq!(fs.corrupt_blocks(f).unwrap(), damaged);
        // Whole-file reads refuse to cross the bad block.
        assert!(fs.peek_blocks_written(f).is_err());
        // An overwrite heals the block.
        fs.write_block(f, damaged[0], Bytes::from(vec![9u8; 512]), SimTime::ZERO).unwrap();
        assert!(fs.read_block(f, damaged[0], SimTime::ZERO).is_ok());
    }

    #[test]
    fn duplicate_paths_rejected() {
        let mut fs = fs4();
        fs.create_append_file("/x", DiskId(0), FileKind::Archive).unwrap();
        let err = fs.create_append_file("/x", DiskId(0), FileKind::Archive).unwrap_err();
        assert!(matches!(err, VfsError::AlreadyExists(_)));
    }

    #[test]
    fn deleted_path_can_be_recreated() {
        let mut fs = fs4();
        fs.create_append_file("/x", DiskId(0), FileKind::Archive).unwrap();
        fs.delete_path("/x").unwrap();
        assert!(fs.create_append_file("/x", DiskId(0), FileKind::Archive).is_ok());
    }

    #[test]
    fn copy_preserves_contents_and_charges_both_disks() {
        let mut fs = fs4();
        let f = fs.create_block_file("/u01/a.dbf", DiskId(0), FileKind::Data, 512, 4).unwrap();
        fs.write_block(f, 1, Bytes::from(vec![9u8; 512]), SimTime::ZERO).unwrap();
        let (_, copy) = fs.copy_file(f, "/u04/a.bak", DiskId(3), FileKind::Backup, SimTime::ZERO).unwrap();
        // Restore it back over a zeroed original.
        fs.write_block(f, 1, Bytes::from(vec![0u8; 512]), SimTime::ZERO).unwrap();
        fs.restore_into(copy, f, SimTime::ZERO).unwrap();
        let (_, got) = fs.read_block(f, 1, SimTime::ZERO).unwrap();
        assert_eq!(got[0], 9);
        let s3 = fs.disk_stats(DiskId(3)).unwrap();
        assert!(s3.bytes_written > 0, "backup disk saw the copy");
    }

    #[test]
    fn restore_clears_deleted_mark() {
        let mut fs = fs4();
        let f = fs.create_block_file("/u01/a.dbf", DiskId(0), FileKind::Data, 512, 4).unwrap();
        fs.write_block(f, 0, Bytes::from(vec![3u8; 512]), SimTime::ZERO).unwrap();
        let (_, bak) = fs.copy_file(f, "/u04/a.bak", DiskId(3), FileKind::Backup, SimTime::ZERO).unwrap();
        fs.delete_path("/u01/a.dbf").unwrap();
        fs.restore_into(bak, f, SimTime::ZERO).unwrap();
        assert!(!fs.meta(f).unwrap().deleted);
        let (_, got) = fs.read_block(f, 0, SimTime::ZERO).unwrap();
        assert_eq!(got[0], 3);
        assert!(fs.lookup("/u01/a.dbf").is_ok());
    }

    #[test]
    fn list_filters_by_kind() {
        let mut fs = fs4();
        fs.create_append_file("/r1", DiskId(2), FileKind::Redo).unwrap();
        fs.create_append_file("/a1", DiskId(2), FileKind::Archive).unwrap();
        fs.create_append_file("/r2", DiskId(2), FileKind::Redo).unwrap();
        let redo = fs.list(FileKind::Redo);
        assert_eq!(redo.len(), 2);
        assert!(redo.iter().all(|m| m.kind == FileKind::Redo));
    }

    #[test]
    fn io_advances_time() {
        let mut fs = fs4();
        let f = fs.create_block_file("/u01/a.dbf", DiskId(0), FileKind::Data, 8192, 4).unwrap();
        let (t, _) = fs.read_block(f, 0, SimTime::ZERO).unwrap();
        assert!(t > SimTime::ZERO);
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    #[test]
    fn padded_append_inflates_length_but_not_content() {
        let mut fs = SimFs::new(vec![DiskProfile::server_2000()]);
        let f = fs.create_append_file("/r", DiskId(0), FileKind::Redo).unwrap();
        fs.append_padded(f, Bytes::from_static(b"abc"), 1000, SimTime::ZERO).unwrap();
        assert_eq!(fs.meta(f).unwrap().size_bytes, 1003);
        let (_, segs) = fs.read_all(f, SimTime::ZERO).unwrap();
        assert_eq!(segs, vec![Bytes::from_static(b"abc")]);
    }

    #[test]
    fn read_from_charges_partial_length() {
        let mut fs = SimFs::new(vec![DiskProfile::server_2000()]);
        let f = fs.create_append_file("/r", DiskId(0), FileKind::Redo).unwrap();
        fs.append_padded(f, Bytes::from_static(b"x"), 20 * 1024 * 1024, SimTime::ZERO).unwrap();
        let before = fs.disk_stats(DiskId(0)).unwrap().bytes_read;
        let offset = 10 * 1024 * 1024;
        fs.read_from(f, offset, SimTime::ZERO).unwrap();
        let read = fs.disk_stats(DiskId(0)).unwrap().bytes_read - before;
        assert!(read < 11 * 1024 * 1024, "charged roughly half the file, got {read}");
    }

    #[test]
    fn peeks_do_not_charge_io() {
        let mut fs = SimFs::new(vec![DiskProfile::server_2000()]);
        let b = fs.create_block_file("/d", DiskId(0), FileKind::Data, 512, 2).unwrap();
        let a = fs.create_append_file("/r", DiskId(0), FileKind::Redo).unwrap();
        fs.write_block(b, 0, Bytes::from(vec![1u8; 512]), SimTime::ZERO).unwrap();
        fs.append(a, Bytes::from_static(b"seg"), SimTime::ZERO).unwrap();
        let stats_before = fs.disk_stats(DiskId(0)).unwrap();
        assert_eq!(fs.peek_block(b, 0).unwrap()[0], 1);
        assert_eq!(fs.peek_all(a).unwrap().len(), 1);
        assert_eq!(fs.disk_stats(DiskId(0)).unwrap(), stats_before);
    }

    #[test]
    fn charge_io_advances_disk() {
        let mut fs = SimFs::new(vec![DiskProfile::server_2000()]);
        let t = fs.charge_io(DiskId(0), IoKind::Read, 20 * 1024 * 1024, SimTime::ZERO).unwrap();
        assert!(t.as_secs_f64() > 0.9, "20 MB at 20 MB/s is about a second");
        assert!(fs.charge_io(DiskId(5), IoKind::Read, 1, SimTime::ZERO).is_err());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;

    fn fs1() -> SimFs {
        SimFs::new(vec![DiskProfile::server_2000(); 2])
    }

    #[test]
    fn torn_write_keeps_prefix_of_new_and_tail_of_old() {
        let mut fs = fs1();
        let f = fs.create_block_file("/d.dbf", DiskId(0), FileKind::Data, 8, 2).unwrap();
        fs.write_block(f, 0, Bytes::from(vec![1u8; 8]), SimTime::ZERO).unwrap();
        fs.arm_fault(FaultArm::TornWrite {
            target: FileMatch::Path("/d.dbf".into()),
            keep_num: 1,
            keep_den: 2,
        })
        .unwrap();
        // The torn write reports success — the damage is silent.
        fs.write_block(f, 0, Bytes::from(vec![2u8; 8]), SimTime::ZERO).unwrap();
        let (_, got) = fs.read_block(f, 0, SimTime::ZERO).unwrap();
        assert_eq!(&got[..], &[2, 2, 2, 2, 1, 1, 1, 1]);
        // One-shot: the next write is whole.
        fs.write_block(f, 0, Bytes::from(vec![3u8; 8]), SimTime::ZERO).unwrap();
        let (_, got) = fs.read_block(f, 0, SimTime::ZERO).unwrap();
        assert!(got.iter().all(|&b| b == 3));
    }

    #[test]
    fn write_sites_attribute_to_caller_and_survive_clear_faults() {
        let mut fs = fs1();
        let f = fs.create_block_file("/w.dbf", DiskId(0), FileKind::Data, 4, 8).unwrap();
        let r = fs.create_append_file("/w.log", DiskId(0), FileKind::Redo).unwrap();
        assert!(fs.write_sites_observed().is_empty(), "creation is not a write site");
        fs.write_block(f, 0, Bytes::from(vec![1u8; 8]), SimTime::ZERO).unwrap();
        let block_line = line!() - 1;
        // `append` delegates to `append_padded`; `#[track_caller]` must
        // attribute the site here, not inside the delegation.
        fs.append(r, Bytes::from_static(b"x"), SimTime::ZERO).unwrap();
        let append_line = line!() - 1;
        let sites = fs.write_sites_observed();
        assert_eq!(sites.len(), 2);
        assert!(sites.iter().all(|(file, _)| file.ends_with("fs.rs")));
        let lines: Vec<u32> = sites.iter().map(|&(_, l)| l).collect();
        assert!(lines.contains(&block_line), "write_block site {lines:?} vs {block_line}");
        assert!(lines.contains(&append_line), "append site {lines:?} vs {append_line}");
        // Fault disarm (the recovery boundary) must not lose coverage.
        fs.clear_faults();
        assert_eq!(fs.write_sites_observed().len(), 2);
    }

    #[test]
    fn torn_write_matches_by_kind() {
        let mut fs = fs1();
        let f = fs.create_block_file("/d.dbf", DiskId(0), FileKind::Data, 4, 1).unwrap();
        fs.arm_fault(FaultArm::TornWrite {
            target: FileMatch::Kind(FileKind::Data),
            keep_num: 0,
            keep_den: 1,
        })
        .unwrap();
        fs.write_block(f, 0, Bytes::from(vec![7u8; 4]), SimTime::ZERO).unwrap();
        let (_, got) = fs.read_block(f, 0, SimTime::ZERO).unwrap();
        assert!(got.is_empty(), "nothing of the new image persisted over the unwritten block");
    }

    #[test]
    fn partial_append_persists_prefix_and_errors() {
        let mut fs = fs1();
        let f = fs.create_append_file("/r1.log", DiskId(0), FileKind::Redo).unwrap();
        fs.append(f, Bytes::from_static(b"first"), SimTime::ZERO).unwrap();
        fs.arm_fault(FaultArm::PartialAppend {
            target: FileMatch::Kind(FileKind::Redo),
            keep_num: 1,
            keep_den: 2,
        })
        .unwrap();
        let err = fs.append(f, Bytes::from_static(b"second"), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, VfsError::Interrupted(_)));
        let (_, segs) = fs.read_all(f, SimTime::ZERO).unwrap();
        assert_eq!(segs, vec![Bytes::from_static(b"first"), Bytes::from_static(b"sec")]);
        assert_eq!(fs.meta(f).unwrap().size_bytes, 8, "five whole bytes plus the torn three");
        // One-shot: appends work again.
        fs.append(f, Bytes::from_static(b"third"), SimTime::ZERO).unwrap();
    }

    #[test]
    fn bit_rot_flips_exactly_one_bit_deterministically() {
        let mut fs = fs1();
        let f = fs.create_block_file("/d.dbf", DiskId(0), FileKind::Data, 16, 4).unwrap();
        for b in 0..4 {
            fs.write_block(f, b, Bytes::from(vec![0u8; 16]), SimTime::ZERO).unwrap();
        }
        fs.arm_fault(FaultArm::BitRot { target: FileMatch::Path("/d.dbf".into()), seed: 5 }).unwrap();
        let mut flipped = Vec::new();
        for b in 0..4 {
            let (_, img) = fs.read_block(f, b, SimTime::ZERO).unwrap();
            let ones: u32 = img.iter().map(|x| x.count_ones()).sum();
            if ones > 0 {
                flipped.push((b, ones));
            }
        }
        assert_eq!(flipped.len(), 1, "exactly one block touched");
        assert_eq!(flipped[0].1, 1, "exactly one bit flipped");
        // Rot targeting a file with no written blocks is rejected.
        fs.create_block_file("/e.dbf", DiskId(0), FileKind::Data, 16, 4).unwrap();
        let err = fs
            .arm_fault(FaultArm::BitRot { target: FileMatch::Path("/e.dbf".into()), seed: 5 })
            .unwrap_err();
        assert!(matches!(err, VfsError::NotFound(_)));
    }

    #[test]
    fn disk_full_fires_after_budget_and_spares_other_disks() {
        let mut fs = fs1();
        let f = fs.create_block_file("/d.dbf", DiskId(0), FileKind::Data, 512, 8).unwrap();
        let g = fs.create_block_file("/e.dbf", DiskId(1), FileKind::Data, 512, 8).unwrap();
        fs.arm_fault(FaultArm::DiskFull { disk: DiskId(0), after_bytes: 1024 }).unwrap();
        fs.write_block(f, 0, Bytes::from(vec![1u8; 512]), SimTime::ZERO).unwrap();
        fs.write_block(f, 1, Bytes::from(vec![1u8; 512]), SimTime::ZERO).unwrap();
        let err = fs.write_block(f, 2, Bytes::from(vec![1u8; 512]), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, VfsError::DiskFull { disk: 0, .. }));
        assert!(fs.write_block(g, 0, Bytes::from(vec![1u8; 512]), SimTime::ZERO).is_ok());
        // Reads are unaffected; clearing the arm frees the space.
        assert!(fs.read_block(f, 0, SimTime::ZERO).is_ok());
        fs.clear_faults();
        assert!(fs.write_block(f, 2, Bytes::from(vec![1u8; 512]), SimTime::ZERO).is_ok());
    }

    #[test]
    fn slow_io_inflates_service_time() {
        let measure = |mult: u32| {
            let mut fs = fs1();
            let f = fs.create_block_file("/d.dbf", DiskId(0), FileKind::Data, 8192, 4).unwrap();
            if mult > 1 {
                fs.arm_fault(FaultArm::SlowIo { disk: DiskId(0), multiplier: mult }).unwrap();
            }
            let (t, _) = fs.read_block(f, 0, SimTime::ZERO).unwrap();
            t
        };
        let normal = measure(1);
        let limping = measure(8);
        assert!(
            limping.as_micros() > 2 * normal.as_micros(),
            "8x multiplier must visibly slow the disk ({normal:?} vs {limping:?})"
        );
    }

    #[test]
    fn crash_at_write_counts_tears_and_kills_the_machine() {
        let mut fs = fs1();
        let f = fs.create_append_file("/r1.log", DiskId(0), FileKind::Redo).unwrap();
        fs.arm_fault(FaultArm::CrashAtWrite { nth: 3, keep_num: 1, keep_den: 2 }).unwrap();
        fs.append(f, Bytes::from_static(b"aaaa"), SimTime::ZERO).unwrap();
        fs.append(f, Bytes::from_static(b"bbbb"), SimTime::ZERO).unwrap();
        assert!(!fs.crash_write_fired());
        let err = fs.append(f, Bytes::from_static(b"cccc"), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, VfsError::Interrupted(_)));
        assert!(fs.crash_write_fired());
        // The machine is dead: every further write fails, reads still work.
        let err = fs.append(f, Bytes::from_static(b"dddd"), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, VfsError::Interrupted(_)));
        let (_, segs) = fs.read_all(f, SimTime::ZERO).unwrap();
        assert_eq!(segs, vec![Bytes::from_static(b"aaaa"), Bytes::from_static(b"bbbb"), Bytes::from_static(b"cc")]);
        // Power restored: writes work again and the counter kept counting.
        fs.clear_faults();
        assert!(fs.append(f, Bytes::from_static(b"eeee"), SimTime::ZERO).is_ok());
        assert_eq!(fs.writes_observed(), 5);
    }

    #[test]
    fn snapshot_identity_ignores_armed_faults() {
        use crate::snapshot::FsSnapshot;
        let mut fs = fs1();
        fs.create_block_file("/d.dbf", DiskId(0), FileKind::Data, 512, 8).unwrap();
        let clean = FsSnapshot::capture(&fs).id();
        fs.arm_fault(FaultArm::DiskFull { disk: DiskId(0), after_bytes: 1 }).unwrap();
        assert_eq!(FsSnapshot::capture(&fs).id(), clean);
    }
}
