//! The simulated filesystem: disks and files.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use recobench_sim::disk::IoKind;
use recobench_sim::{Disk, DiskProfile, DiskStats, SimTime};
use serde::{Deserialize, Serialize};

use crate::error::{VfsError, VfsResult};

/// Identifies one of the simulated spindles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DiskId(pub usize);

/// Stable handle to a file, valid until the file is purged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u64);

/// What role a file plays; used for reporting and for targeting faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileKind {
    /// A database datafile (block-addressed).
    Data,
    /// A control file (block-addressed).
    Control,
    /// An online redo log member (append-only).
    Redo,
    /// An archived redo log (append-only).
    Archive,
    /// A backup piece (append-only).
    Backup,
}

/// Metadata snapshot for a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Handle of the file.
    pub id: FileId,
    /// Path-like unique name, e.g. `/u02/tpcc_data01.dbf`.
    pub path: String,
    /// Owning disk.
    pub disk: DiskId,
    /// Role of the file.
    pub kind: FileKind,
    /// Logical size in bytes (blocks × block size, or appended length).
    pub size_bytes: u64,
    /// Whether the file has been deleted by an operator action.
    pub deleted: bool,
    /// Whether the file has been corrupted by an operator action.
    pub corrupt: bool,
}

#[derive(Debug, Clone)]
enum Content {
    /// Sparse block store; absent entries read back as all-zero blocks.
    Blocks { block_size: u32, nblocks: u64, data: BTreeMap<u64, Bytes> },
    /// Append-only byte stream, stored as a list of appended segments.
    Append { segments: Vec<Bytes>, len: u64 },
}

#[derive(Debug, Clone)]
struct FileEntry {
    path: String,
    disk: DiskId,
    kind: FileKind,
    deleted: bool,
    corrupt: bool,
    content: Content,
}

impl FileEntry {
    fn check_readable(&self) -> VfsResult<()> {
        if self.deleted {
            return Err(VfsError::Deleted(self.path.clone()));
        }
        if self.corrupt {
            return Err(VfsError::Corrupt(self.path.clone()));
        }
        Ok(())
    }

    fn size_bytes(&self) -> u64 {
        match &self.content {
            Content::Blocks { block_size, nblocks, .. } => *nblocks * *block_size as u64,
            Content::Append { len, .. } => *len,
        }
    }
}

/// The simulated filesystem: a set of disks and the files on them.
///
/// ```
/// use recobench_sim::{DiskProfile, SimTime};
/// use recobench_vfs::{FileKind, SimFs};
///
/// let mut fs = SimFs::new(vec![DiskProfile::server_2000()]);
/// let disk = fs.disk_ids()[0];
/// let f = fs.create_block_file("/u01/system01.dbf", disk, FileKind::Data, 8192, 16)?;
/// let (done, _) = fs.write_block(f, 3, vec![7u8; 8192].into(), SimTime::ZERO)?;
/// let (_, img) = fs.read_block(f, 3, done)?;
/// assert_eq!(img[0], 7);
/// # Ok::<(), recobench_vfs::VfsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimFs {
    disks: Vec<Disk>,
    files: BTreeMap<FileId, FileEntry>,
    next_id: u64,
}

impl SimFs {
    /// Creates a filesystem with one disk per profile.
    pub fn new(profiles: Vec<DiskProfile>) -> Self {
        SimFs {
            disks: profiles.into_iter().map(Disk::new).collect(),
            files: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// Handles of all disks, in creation order.
    pub fn disk_ids(&self) -> Vec<DiskId> {
        (0..self.disks.len()).map(DiskId).collect()
    }

    /// Cumulative I/O counters for `disk`.
    ///
    /// # Errors
    ///
    /// Fails if `disk` does not exist.
    pub fn disk_stats(&self, disk: DiskId) -> VfsResult<DiskStats> {
        self.disks.get(disk.0).map(|d| d.stats()).ok_or(VfsError::DiskUnavailable(disk.0))
    }

    fn disk_mut(&mut self, disk: DiskId) -> VfsResult<&mut Disk> {
        self.disks.get_mut(disk.0).ok_or(VfsError::DiskUnavailable(disk.0))
    }

    fn alloc_id(&mut self) -> FileId {
        let id = FileId(self.next_id);
        self.next_id += 1;
        id
    }

    fn entry(&self, id: FileId) -> VfsResult<&FileEntry> {
        self.files.get(&id).ok_or_else(|| VfsError::NotFound(format!("file #{}", id.0)))
    }

    fn entry_mut(&mut self, id: FileId) -> VfsResult<&mut FileEntry> {
        self.files.get_mut(&id).ok_or_else(|| VfsError::NotFound(format!("file #{}", id.0)))
    }

    fn check_path_free(&self, path: &str) -> VfsResult<()> {
        let exists = self.files.values().any(|f| f.path == path && !f.deleted);
        if exists {
            Err(VfsError::AlreadyExists(path.to_string()))
        } else {
            Ok(())
        }
    }

    /// Creates a block-addressed file of `nblocks` blocks of `block_size`
    /// bytes. Blocks read back as zeroes until written.
    ///
    /// # Errors
    ///
    /// Fails if the path is taken or the disk does not exist.
    pub fn create_block_file(
        &mut self,
        path: &str,
        disk: DiskId,
        kind: FileKind,
        block_size: u32,
        nblocks: u64,
    ) -> VfsResult<FileId> {
        self.check_path_free(path)?;
        if disk.0 >= self.disks.len() {
            return Err(VfsError::DiskUnavailable(disk.0));
        }
        let id = self.alloc_id();
        self.files.insert(
            id,
            FileEntry {
                path: path.to_string(),
                disk,
                kind,
                deleted: false,
                corrupt: false,
                content: Content::Blocks { block_size, nblocks, data: BTreeMap::new() },
            },
        );
        Ok(id)
    }

    /// Creates an empty append-only file.
    ///
    /// # Errors
    ///
    /// Fails if the path is taken or the disk does not exist.
    pub fn create_append_file(&mut self, path: &str, disk: DiskId, kind: FileKind) -> VfsResult<FileId> {
        self.check_path_free(path)?;
        if disk.0 >= self.disks.len() {
            return Err(VfsError::DiskUnavailable(disk.0));
        }
        let id = self.alloc_id();
        self.files.insert(
            id,
            FileEntry {
                path: path.to_string(),
                disk,
                kind,
                deleted: false,
                corrupt: false,
                content: Content::Append { segments: Vec::new(), len: 0 },
            },
        );
        Ok(id)
    }

    /// Reads one block. Returns the completion instant and the block image.
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted, corrupt, not block-addressed,
    /// or the index is out of range.
    pub fn read_block(&mut self, id: FileId, block: u64, now: SimTime) -> VfsResult<(SimTime, Bytes)> {
        let (disk, bytes, img) = {
            let e = self.entry(id)?;
            e.check_readable()?;
            match &e.content {
                Content::Blocks { block_size, nblocks, data } => {
                    if block >= *nblocks {
                        return Err(VfsError::OutOfRange {
                            file: e.path.clone(),
                            block,
                            blocks: *nblocks,
                        });
                    }
                    let img = data
                        .get(&block)
                        .cloned()
                        .unwrap_or_else(|| Bytes::from(vec![0u8; *block_size as usize]));
                    (e.disk, *block_size as u64, img)
                }
                Content::Append { .. } => return Err(VfsError::WrongAccessStyle(e.path.clone())),
            }
        };
        let done = self.disk_mut(disk)?.submit(now, IoKind::Read, bytes, false);
        Ok((done, img))
    }

    /// Writes one block. Returns the completion instant.
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted, corrupt, not block-addressed,
    /// or the index is out of range.
    pub fn write_block(
        &mut self,
        id: FileId,
        block: u64,
        image: Bytes,
        now: SimTime,
    ) -> VfsResult<(SimTime, ())> {
        let (disk, bytes) = {
            let e = self.entry_mut(id)?;
            if e.deleted {
                return Err(VfsError::Deleted(e.path.clone()));
            }
            match &mut e.content {
                Content::Blocks { block_size, nblocks, data } => {
                    if block >= *nblocks {
                        return Err(VfsError::OutOfRange {
                            file: e.path.clone(),
                            block,
                            blocks: *nblocks,
                        });
                    }
                    data.insert(block, image);
                    (e.disk, *block_size as u64)
                }
                Content::Append { .. } => return Err(VfsError::WrongAccessStyle(e.path.clone())),
            }
        };
        let done = self.disk_mut(disk)?.submit(now, IoKind::Write, bytes, false);
        Ok((done, ()))
    }

    /// Appends `data` to an append-only file (sequential write).
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted or not append-only.
    pub fn append(&mut self, id: FileId, data: Bytes, now: SimTime) -> VfsResult<(SimTime, ())> {
        self.append_padded(id, data, 0, now)
    }

    /// Appends `data` plus `pad` additional accounting-only bytes.
    ///
    /// The pad inflates the file's logical length and the charged I/O time
    /// but carries no information (the engine uses it to model block-level
    /// redo change vectors without materialising filler). Reads charge the
    /// padded length and return only the informative bytes.
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted or not append-only.
    pub fn append_padded(
        &mut self,
        id: FileId,
        data: Bytes,
        pad: u64,
        now: SimTime,
    ) -> VfsResult<(SimTime, ())> {
        let (disk, bytes) = {
            let e = self.entry_mut(id)?;
            if e.deleted {
                return Err(VfsError::Deleted(e.path.clone()));
            }
            match &mut e.content {
                Content::Append { segments, len } => {
                    let n = data.len() as u64 + pad;
                    *len += n;
                    segments.push(data);
                    (e.disk, n)
                }
                Content::Blocks { .. } => return Err(VfsError::WrongAccessStyle(e.path.clone())),
            }
        };
        let done = self.disk_mut(disk)?.submit(now, IoKind::Write, bytes, true);
        Ok((done, ()))
    }

    /// Reads the whole contents of an append-only file (sequential read).
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted, corrupt or not append-only.
    pub fn read_all(&mut self, id: FileId, now: SimTime) -> VfsResult<(SimTime, Vec<Bytes>)> {
        let (disk, bytes, segs) = {
            let e = self.entry(id)?;
            e.check_readable()?;
            match &e.content {
                Content::Append { segments, len } => (e.disk, *len, segments.clone()),
                Content::Blocks { .. } => return Err(VfsError::WrongAccessStyle(e.path.clone())),
            }
        };
        let done = self.disk_mut(disk)?.submit(now, IoKind::Read, bytes, true);
        Ok((done, segs))
    }

    /// Reads an append-only file starting at logical byte `offset`
    /// (sequential read charged for `len - offset` bytes). The returned
    /// segments are the *complete* informative contents — callers that need
    /// to skip the prefix do so while decoding; only the I/O charge honours
    /// the offset.
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted, corrupt or not append-only.
    pub fn read_from(&mut self, id: FileId, offset: u64, now: SimTime) -> VfsResult<(SimTime, Vec<Bytes>)> {
        let (disk, bytes, segs) = {
            let e = self.entry(id)?;
            e.check_readable()?;
            match &e.content {
                Content::Append { segments, len } => {
                    (e.disk, len.saturating_sub(offset), segments.clone())
                }
                Content::Blocks { .. } => return Err(VfsError::WrongAccessStyle(e.path.clone())),
            }
        };
        let done = self.disk_mut(disk)?.submit(now, IoKind::Read, bytes, true);
        Ok((done, segs))
    }

    /// Zero-cost inspection of one block, for analysis tooling (integrity
    /// checkers, index rebuild) that must not perturb the simulated timing.
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted, corrupt or the index is out
    /// of range.
    pub fn peek_block(&self, id: FileId, block: u64) -> VfsResult<Bytes> {
        let e = self.entry(id)?;
        e.check_readable()?;
        match &e.content {
            Content::Blocks { block_size, nblocks, data } => {
                if block >= *nblocks {
                    return Err(VfsError::OutOfRange { file: e.path.clone(), block, blocks: *nblocks });
                }
                Ok(data
                    .get(&block)
                    .cloned()
                    .unwrap_or_else(|| Bytes::from(vec![0u8; *block_size as usize])))
            }
            Content::Append { .. } => Err(VfsError::WrongAccessStyle(e.path.clone())),
        }
    }

    /// Zero-cost enumeration of every written block of a block file (for
    /// machine-to-machine transfers such as stand-by instantiation).
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted, corrupt or not
    /// block-addressed.
    pub fn peek_blocks_written(&self, id: FileId) -> VfsResult<Vec<(u64, Bytes)>> {
        let e = self.entry(id)?;
        e.check_readable()?;
        match &e.content {
            Content::Blocks { data, .. } => Ok(data.iter().map(|(b, img)| (*b, img.clone())).collect()),
            Content::Append { .. } => Err(VfsError::WrongAccessStyle(e.path.clone())),
        }
    }

    /// Zero-cost inspection of an append-only file's contents.
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted, corrupt or not append-only.
    pub fn peek_all(&self, id: FileId) -> VfsResult<Vec<Bytes>> {
        let e = self.entry(id)?;
        e.check_readable()?;
        match &e.content {
            Content::Append { segments, .. } => Ok(segments.clone()),
            Content::Blocks { .. } => Err(VfsError::WrongAccessStyle(e.path.clone())),
        }
    }

    /// Charges `bytes` of synthetic sequential I/O on `disk` without
    /// touching any file. Used to model volume the scaled database does not
    /// materialise (e.g. restoring the nominal-size database from backup).
    ///
    /// # Errors
    ///
    /// Fails if the disk does not exist.
    pub fn charge_io(&mut self, disk: DiskId, kind: IoKind, bytes: u64, now: SimTime) -> VfsResult<SimTime> {
        Ok(self.disk_mut(disk)?.submit(now, kind, bytes, true))
    }

    /// Truncates an append-only file to empty (instantaneous metadata op).
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, deleted or not append-only.
    pub fn truncate(&mut self, id: FileId) -> VfsResult<()> {
        let e = self.entry_mut(id)?;
        if e.deleted {
            return Err(VfsError::Deleted(e.path.clone()));
        }
        match &mut e.content {
            Content::Append { segments, len } => {
                segments.clear();
                *len = 0;
                Ok(())
            }
            Content::Blocks { .. } => Err(VfsError::WrongAccessStyle(e.path.clone())),
        }
    }

    /// Marks a file deleted **by path** — the operator's view of the world.
    ///
    /// The content is dropped immediately; subsequent reads and writes fail.
    ///
    /// # Errors
    ///
    /// Fails if no live file has this path.
    pub fn delete_path(&mut self, path: &str) -> VfsResult<FileId> {
        let id = self.lookup(path)?;
        let e = self.entry_mut(id)?;
        e.deleted = true;
        e.content = match &e.content {
            Content::Blocks { block_size, nblocks, .. } => {
                Content::Blocks { block_size: *block_size, nblocks: *nblocks, data: BTreeMap::new() }
            }
            Content::Append { .. } => Content::Append { segments: Vec::new(), len: 0 },
        };
        Ok(id)
    }

    /// Marks a file's contents corrupt **by path**; reads fail afterwards.
    ///
    /// # Errors
    ///
    /// Fails if no live file has this path.
    pub fn corrupt_path(&mut self, path: &str) -> VfsResult<FileId> {
        let id = self.lookup(path)?;
        self.entry_mut(id)?.corrupt = true;
        Ok(id)
    }

    /// Removes a file entry entirely (e.g. dropping an archived log after a
    /// successful backup cycle). Unlike [`SimFs::delete_path`] this frees
    /// the path for reuse.
    ///
    /// # Errors
    ///
    /// Fails if the file does not exist.
    pub fn purge(&mut self, id: FileId) -> VfsResult<()> {
        self.files.remove(&id).map(|_| ()).ok_or_else(|| VfsError::NotFound(format!("file #{}", id.0)))
    }

    /// Finds a live (non-deleted) file by path.
    ///
    /// # Errors
    ///
    /// Fails if the path does not name a live file.
    pub fn lookup(&self, path: &str) -> VfsResult<FileId> {
        self.files
            .iter()
            .find(|(_, f)| f.path == path && !f.deleted)
            .map(|(id, _)| *id)
            .ok_or_else(|| VfsError::NotFound(path.to_string()))
    }

    /// Metadata snapshot for a file (works for deleted files too, so damage
    /// assessment can see what was lost).
    ///
    /// # Errors
    ///
    /// Fails if the id has been purged.
    pub fn meta(&self, id: FileId) -> VfsResult<FileMeta> {
        let e = self.entry(id)?;
        Ok(FileMeta {
            id,
            path: e.path.clone(),
            disk: e.disk,
            kind: e.kind,
            size_bytes: e.size_bytes(),
            deleted: e.deleted,
            corrupt: e.corrupt,
        })
    }

    /// Metadata for every file, in creation order. The snapshot layer
    /// derives its deterministic identity from this listing.
    pub fn file_metas(&self) -> Vec<FileMeta> {
        self.files
            .iter()
            .map(|(id, f)| FileMeta {
                id: *id,
                path: f.path.clone(),
                disk: f.disk,
                kind: f.kind,
                size_bytes: f.size_bytes(),
                deleted: f.deleted,
                corrupt: f.corrupt,
            })
            .collect()
    }

    /// Metadata for every file of the given kind, in creation order.
    pub fn list(&self, kind: FileKind) -> Vec<FileMeta> {
        self.files
            .iter()
            .filter(|(_, f)| f.kind == kind)
            .map(|(id, f)| FileMeta {
                id: *id,
                path: f.path.clone(),
                disk: f.disk,
                kind: f.kind,
                size_bytes: f.size_bytes(),
                deleted: f.deleted,
                corrupt: f.corrupt,
            })
            .collect()
    }

    /// Duplicates the *contents* of `src` into a fresh file at `dst_path` on
    /// `dst_disk`, charging a sequential read on the source disk and a
    /// sequential write on the destination disk. Returns the new file's id
    /// and the completion instant (the later of the two transfers).
    ///
    /// # Errors
    ///
    /// Fails if the source is unreadable or the destination path is taken.
    pub fn copy_file(
        &mut self,
        src: FileId,
        dst_path: &str,
        dst_disk: DiskId,
        dst_kind: FileKind,
        now: SimTime,
    ) -> VfsResult<(SimTime, FileId)> {
        let (src_disk, size, content) = {
            let e = self.entry(src)?;
            e.check_readable()?;
            (e.disk, e.size_bytes(), e.content.clone())
        };
        self.check_path_free(dst_path)?;
        if dst_disk.0 >= self.disks.len() {
            return Err(VfsError::DiskUnavailable(dst_disk.0));
        }
        let read_done = self.disk_mut(src_disk)?.submit(now, IoKind::Read, size, true);
        let write_done = self.disk_mut(dst_disk)?.submit(now, IoKind::Write, size, true);
        let id = self.alloc_id();
        self.files.insert(
            id,
            FileEntry {
                path: dst_path.to_string(),
                disk: dst_disk,
                kind: dst_kind,
                deleted: false,
                corrupt: false,
                content,
            },
        );
        Ok((read_done.max(write_done), id))
    }

    /// Overwrites the contents of `dst` with the contents of `src`
    /// (restore-from-backup), charging both disks. The destination keeps its
    /// path, kind and id, and any deleted/corrupt marks are cleared.
    ///
    /// # Errors
    ///
    /// Fails if either file is missing or the source is unreadable.
    pub fn restore_into(&mut self, src: FileId, dst: FileId, now: SimTime) -> VfsResult<SimTime> {
        let (src_disk, size, content) = {
            let e = self.entry(src)?;
            e.check_readable()?;
            (e.disk, e.size_bytes(), e.content.clone())
        };
        let dst_disk = {
            let e = self.entry_mut(dst)?;
            e.content = content;
            e.deleted = false;
            e.corrupt = false;
            e.disk
        };
        let read_done = self.disk_mut(src_disk)?.submit(now, IoKind::Read, size, true);
        let write_done = self.disk_mut(dst_disk)?.submit(now, IoKind::Write, size, true);
        Ok(read_done.max(write_done))
    }
}

/// A filesystem handle shareable between the primary instance, the stand-by
/// instance and the fault injector.
pub type SharedFs = Arc<Mutex<SimFs>>;

/// Wraps a [`SimFs`] for sharing.
pub fn shared(fs: SimFs) -> SharedFs {
    Arc::new(Mutex::new(fs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs4() -> SimFs {
        SimFs::new(vec![DiskProfile::server_2000(); 4])
    }

    #[test]
    fn block_file_round_trip() {
        let mut fs = fs4();
        let f = fs.create_block_file("/u01/a.dbf", DiskId(0), FileKind::Data, 8192, 4).unwrap();
        let img = Bytes::from(vec![5u8; 8192]);
        let (t1, ()) = fs.write_block(f, 2, img.clone(), SimTime::ZERO).unwrap();
        let (_, got) = fs.read_block(f, 2, t1).unwrap();
        assert_eq!(got, img);
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let mut fs = fs4();
        let f = fs.create_block_file("/u01/a.dbf", DiskId(0), FileKind::Data, 512, 2).unwrap();
        let (_, got) = fs.read_block(f, 0, SimTime::ZERO).unwrap();
        assert!(got.iter().all(|&b| b == 0));
        assert_eq!(got.len(), 512);
    }

    #[test]
    fn out_of_range_block_fails() {
        let mut fs = fs4();
        let f = fs.create_block_file("/u01/a.dbf", DiskId(0), FileKind::Data, 512, 2).unwrap();
        let err = fs.read_block(f, 2, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, VfsError::OutOfRange { block: 2, blocks: 2, .. }));
    }

    #[test]
    fn append_and_read_all() {
        let mut fs = fs4();
        let f = fs.create_append_file("/u03/redo01.log", DiskId(2), FileKind::Redo).unwrap();
        fs.append(f, Bytes::from_static(b"one"), SimTime::ZERO).unwrap();
        fs.append(f, Bytes::from_static(b"two"), SimTime::ZERO).unwrap();
        let (_, segs) = fs.read_all(f, SimTime::ZERO).unwrap();
        assert_eq!(segs, vec![Bytes::from_static(b"one"), Bytes::from_static(b"two")]);
        assert_eq!(fs.meta(f).unwrap().size_bytes, 6);
    }

    #[test]
    fn truncate_resets_append_file() {
        let mut fs = fs4();
        let f = fs.create_append_file("/u03/redo01.log", DiskId(2), FileKind::Redo).unwrap();
        fs.append(f, Bytes::from_static(b"abc"), SimTime::ZERO).unwrap();
        fs.truncate(f).unwrap();
        assert_eq!(fs.meta(f).unwrap().size_bytes, 0);
    }

    #[test]
    fn delete_path_makes_reads_fail() {
        let mut fs = fs4();
        let f = fs.create_block_file("/u02/users01.dbf", DiskId(1), FileKind::Data, 512, 2).unwrap();
        fs.delete_path("/u02/users01.dbf").unwrap();
        let err = fs.read_block(f, 0, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, VfsError::Deleted(_)));
        // Path is gone from lookup.
        assert!(fs.lookup("/u02/users01.dbf").is_err());
        // But metadata is still inspectable for damage assessment.
        assert!(fs.meta(f).unwrap().deleted);
    }

    #[test]
    fn corrupt_path_fails_reads_but_not_meta() {
        let mut fs = fs4();
        let f = fs.create_block_file("/u02/users01.dbf", DiskId(1), FileKind::Data, 512, 2).unwrap();
        fs.corrupt_path("/u02/users01.dbf").unwrap();
        assert!(matches!(fs.read_block(f, 0, SimTime::ZERO).unwrap_err(), VfsError::Corrupt(_)));
        assert!(fs.meta(f).unwrap().corrupt);
    }

    #[test]
    fn duplicate_paths_rejected() {
        let mut fs = fs4();
        fs.create_append_file("/x", DiskId(0), FileKind::Archive).unwrap();
        let err = fs.create_append_file("/x", DiskId(0), FileKind::Archive).unwrap_err();
        assert!(matches!(err, VfsError::AlreadyExists(_)));
    }

    #[test]
    fn deleted_path_can_be_recreated() {
        let mut fs = fs4();
        fs.create_append_file("/x", DiskId(0), FileKind::Archive).unwrap();
        fs.delete_path("/x").unwrap();
        assert!(fs.create_append_file("/x", DiskId(0), FileKind::Archive).is_ok());
    }

    #[test]
    fn copy_preserves_contents_and_charges_both_disks() {
        let mut fs = fs4();
        let f = fs.create_block_file("/u01/a.dbf", DiskId(0), FileKind::Data, 512, 4).unwrap();
        fs.write_block(f, 1, Bytes::from(vec![9u8; 512]), SimTime::ZERO).unwrap();
        let (_, copy) = fs.copy_file(f, "/u04/a.bak", DiskId(3), FileKind::Backup, SimTime::ZERO).unwrap();
        // Restore it back over a zeroed original.
        fs.write_block(f, 1, Bytes::from(vec![0u8; 512]), SimTime::ZERO).unwrap();
        fs.restore_into(copy, f, SimTime::ZERO).unwrap();
        let (_, got) = fs.read_block(f, 1, SimTime::ZERO).unwrap();
        assert_eq!(got[0], 9);
        let s3 = fs.disk_stats(DiskId(3)).unwrap();
        assert!(s3.bytes_written > 0, "backup disk saw the copy");
    }

    #[test]
    fn restore_clears_deleted_mark() {
        let mut fs = fs4();
        let f = fs.create_block_file("/u01/a.dbf", DiskId(0), FileKind::Data, 512, 4).unwrap();
        fs.write_block(f, 0, Bytes::from(vec![3u8; 512]), SimTime::ZERO).unwrap();
        let (_, bak) = fs.copy_file(f, "/u04/a.bak", DiskId(3), FileKind::Backup, SimTime::ZERO).unwrap();
        fs.delete_path("/u01/a.dbf").unwrap();
        fs.restore_into(bak, f, SimTime::ZERO).unwrap();
        assert!(!fs.meta(f).unwrap().deleted);
        let (_, got) = fs.read_block(f, 0, SimTime::ZERO).unwrap();
        assert_eq!(got[0], 3);
        assert!(fs.lookup("/u01/a.dbf").is_ok());
    }

    #[test]
    fn list_filters_by_kind() {
        let mut fs = fs4();
        fs.create_append_file("/r1", DiskId(2), FileKind::Redo).unwrap();
        fs.create_append_file("/a1", DiskId(2), FileKind::Archive).unwrap();
        fs.create_append_file("/r2", DiskId(2), FileKind::Redo).unwrap();
        let redo = fs.list(FileKind::Redo);
        assert_eq!(redo.len(), 2);
        assert!(redo.iter().all(|m| m.kind == FileKind::Redo));
    }

    #[test]
    fn io_advances_time() {
        let mut fs = fs4();
        let f = fs.create_block_file("/u01/a.dbf", DiskId(0), FileKind::Data, 8192, 4).unwrap();
        let (t, _) = fs.read_block(f, 0, SimTime::ZERO).unwrap();
        assert!(t > SimTime::ZERO);
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    #[test]
    fn padded_append_inflates_length_but_not_content() {
        let mut fs = SimFs::new(vec![DiskProfile::server_2000()]);
        let f = fs.create_append_file("/r", DiskId(0), FileKind::Redo).unwrap();
        fs.append_padded(f, Bytes::from_static(b"abc"), 1000, SimTime::ZERO).unwrap();
        assert_eq!(fs.meta(f).unwrap().size_bytes, 1003);
        let (_, segs) = fs.read_all(f, SimTime::ZERO).unwrap();
        assert_eq!(segs, vec![Bytes::from_static(b"abc")]);
    }

    #[test]
    fn read_from_charges_partial_length() {
        let mut fs = SimFs::new(vec![DiskProfile::server_2000()]);
        let f = fs.create_append_file("/r", DiskId(0), FileKind::Redo).unwrap();
        fs.append_padded(f, Bytes::from_static(b"x"), 20 * 1024 * 1024, SimTime::ZERO).unwrap();
        let before = fs.disk_stats(DiskId(0)).unwrap().bytes_read;
        let offset = 10 * 1024 * 1024;
        fs.read_from(f, offset, SimTime::ZERO).unwrap();
        let read = fs.disk_stats(DiskId(0)).unwrap().bytes_read - before;
        assert!(read < 11 * 1024 * 1024, "charged roughly half the file, got {read}");
    }

    #[test]
    fn peeks_do_not_charge_io() {
        let mut fs = SimFs::new(vec![DiskProfile::server_2000()]);
        let b = fs.create_block_file("/d", DiskId(0), FileKind::Data, 512, 2).unwrap();
        let a = fs.create_append_file("/r", DiskId(0), FileKind::Redo).unwrap();
        fs.write_block(b, 0, Bytes::from(vec![1u8; 512]), SimTime::ZERO).unwrap();
        fs.append(a, Bytes::from_static(b"seg"), SimTime::ZERO).unwrap();
        let stats_before = fs.disk_stats(DiskId(0)).unwrap();
        assert_eq!(fs.peek_block(b, 0).unwrap()[0], 1);
        assert_eq!(fs.peek_all(a).unwrap().len(), 1);
        assert_eq!(fs.disk_stats(DiskId(0)).unwrap(), stats_before);
    }

    #[test]
    fn charge_io_advances_disk() {
        let mut fs = SimFs::new(vec![DiskProfile::server_2000()]);
        let t = fs.charge_io(DiskId(0), IoKind::Read, 20 * 1024 * 1024, SimTime::ZERO).unwrap();
        assert!(t.as_secs_f64() > 0.9, "20 MB at 20 MB/s is about a second");
        assert!(fs.charge_io(DiskId(5), IoKind::Read, 1, SimTime::ZERO).is_err());
    }
}
