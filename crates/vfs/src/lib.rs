//! Simulated storage substrate for RecoBench.
//!
//! The DBMS engine stores everything — datafiles, online redo logs, archived
//! logs, backups and the control file — in a [`SimFs`]: a set of simulated
//! disks (with the single-server service model from `recobench-sim`) holding
//! named files. Two access styles are supported per file:
//!
//! * **block files** — fixed-size randomly addressable blocks (datafiles,
//!   control files);
//! * **append files** — sequential byte streams (online redo logs, archived
//!   logs, backup pieces).
//!
//! The filesystem also exposes the *operator's* surface: files can be
//! deleted or corrupted by path, exactly the way a DBA with a shell on the
//! server would damage a real installation. That is what the fault injector
//! uses.
//!
//! Below the operator's surface sits the *hardware's*: storage faults armed
//! through [`FaultArm`] — torn block writes, interrupted appends, silent
//! bit-rot, `ENOSPC`, limping disks and crash-at-write-point kills — model
//! what a failing disk or abrupt power loss does underneath the DBMS.
//!
//! All operations charge service time on the owning disk and return the
//! completion instant so callers can advance their simulated clock.

pub mod error;
pub mod fs;
pub mod snapshot;

pub use error::{VfsError, VfsResult};
pub use recobench_sim::disk::IoKind;
pub use fs::{DiskId, FaultArm, FileId, FileKind, FileMatch, FileMeta, SharedFs, SimFs};
pub use snapshot::{FsSnapshot, SnapshotId};
