//! Copy-on-write filesystem snapshots.
//!
//! A campaign's setup phase (create database, load TPC-C, cold backup) is a
//! pure function of its inputs, so the resulting disk image can be captured
//! once and cheaply cloned for every experiment cell. [`FsSnapshot`] holds
//! such a captured image: because every block and append segment in a
//! [`SimFs`] is a refcounted `Bytes`, a structural clone shares all payload
//! bytes with the snapshot and only copies the (small) file/disk bookkeeping.
//! Writes into a materialized clone insert *new* `Bytes` values, so clones
//! never disturb the template or each other — clone *is* copy-on-write.
//!
//! Each snapshot carries a deterministic [`SnapshotId`], an FNV-1a hash of
//! its ordered manifest (file id, path, kind, disk, size, in creation
//! order). Two snapshots of byte-identically laid-out filesystems get the
//! same id regardless of thread or wall-clock context, which is what lets a
//! campaign deduplicate templates safely.

use crate::fs::{FileMeta, SimFs};

/// Deterministic identity of a snapshot: an FNV-1a hash over the ordered
/// manifest. Stable across runs, threads and processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapshotId(pub u64);

impl std::fmt::Display for SnapshotId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fs-{:016x}", self.0)
    }
}

/// A captured point-in-time image of a [`SimFs`], cheap to clone out.
#[derive(Debug, Clone)]
pub struct FsSnapshot {
    fs: SimFs,
    id: SnapshotId,
}

impl FsSnapshot {
    /// Captures the filesystem as it stands. Payload bytes are shared with
    /// the live filesystem until either side writes.
    pub fn capture(fs: &SimFs) -> FsSnapshot {
        let fs = fs.clone();
        let id = SnapshotId(fnv1a(manifest_string(&fs.file_metas()).as_bytes()));
        FsSnapshot { fs, id }
    }

    /// The snapshot's deterministic identity.
    pub fn id(&self) -> SnapshotId {
        self.id
    }

    /// The ordered manifest the identity hashes: one line per file, in
    /// creation order, no timestamps.
    pub fn manifest(&self) -> String {
        manifest_string(&self.fs.file_metas())
    }

    /// Produces an independent filesystem backed by the snapshot's blocks.
    /// O(bookkeeping), not O(data): payloads stay shared until written.
    pub fn materialize(&self) -> SimFs {
        self.fs.clone()
    }
}

/// One line per file: `id path kind disk size [deleted] [corrupt]`.
fn manifest_string(metas: &[FileMeta]) -> String {
    let mut out = String::new();
    for m in metas {
        out.push_str(&format!(
            "{} {} {:?} d{} {}B{}{}\n",
            m.id.0,
            m.path,
            m.kind,
            m.disk.0,
            m.size_bytes,
            if m.deleted { " deleted" } else { "" },
            if m.corrupt { " corrupt" } else { "" },
        ));
    }
    out
}

/// FNV-1a, 64 bit: tiny, dependency-free, and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use crate::fs::FileKind;
    use recobench_sim::{DiskProfile, SimTime};
    use super::*;

    fn sample_fs() -> SimFs {
        let mut fs = SimFs::new(vec![DiskProfile::server_2000(); 2]);
        let d0 = fs.disk_ids()[0];
        let f = fs.create_block_file("/u01/data01.dbf", d0, FileKind::Data, 4096, 8).unwrap();
        fs.write_block(f, 2, vec![9u8; 4096].into(), SimTime::ZERO).unwrap();
        let a = fs.create_append_file("/u03/redo01.log", fs.disk_ids()[1], FileKind::Redo).unwrap();
        fs.append(a, vec![1, 2, 3].into(), SimTime::ZERO).unwrap();
        fs
    }

    #[test]
    fn identical_layouts_get_identical_ids() {
        let a = FsSnapshot::capture(&sample_fs());
        let b = FsSnapshot::capture(&sample_fs());
        assert_eq!(a.id(), b.id());
        assert_eq!(a.manifest(), b.manifest());
        assert!(a.manifest().contains("/u01/data01.dbf"));
    }

    #[test]
    fn different_layouts_get_different_ids() {
        let mut fs = sample_fs();
        let base = FsSnapshot::capture(&fs);
        fs.create_append_file("/u04/extra.bak", fs.disk_ids()[0], FileKind::Backup).unwrap();
        assert_ne!(FsSnapshot::capture(&fs).id(), base.id());
    }

    #[test]
    fn materialized_clones_are_independent() {
        let snap = FsSnapshot::capture(&sample_fs());
        let mut a = snap.materialize();
        let b = snap.materialize();
        let f = a.lookup("/u01/data01.dbf").unwrap();
        a.write_block(f, 2, vec![7u8; 4096].into(), SimTime::ZERO).unwrap();
        assert_eq!(a.peek_block(f, 2).unwrap()[0], 7);
        // Neither the sibling clone nor the snapshot saw the write.
        assert_eq!(b.peek_block(b.lookup("/u01/data01.dbf").unwrap(), 2).unwrap()[0], 9);
        assert_eq!(snap.materialize().peek_block(f, 2).unwrap()[0], 9);
    }

    #[test]
    fn manifest_is_ordered_and_timestamp_free() {
        let snap = FsSnapshot::capture(&sample_fs());
        let manifest = snap.manifest();
        let lines: Vec<&str> = manifest.lines().collect();
        assert_eq!(lines.len(), 2);
        let ids: Vec<u64> =
            lines.iter().map(|l| l.split(' ').next().unwrap().parse().unwrap()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "manifest lines follow file-id order");
    }
}
