//! Error type for simulated filesystem operations.

use std::error::Error;
use std::fmt;

/// Result alias for filesystem operations.
pub type VfsResult<T> = Result<T, VfsError>;

/// Errors returned by [`SimFs`](crate::SimFs) operations.
///
/// These surface to the engine exactly like OS errors surface to a real
/// DBMS: a deleted datafile is discovered when the next read fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// No file with the given id or path exists (it may never have existed,
    /// or it may have been deleted and its slot purged).
    NotFound(String),
    /// The file was deleted out from under the engine.
    Deleted(String),
    /// The file's contents are unreadable.
    Corrupt(String),
    /// A block index beyond the file's allocated size was addressed.
    OutOfRange { file: String, block: u64, blocks: u64 },
    /// A file with this path already exists.
    AlreadyExists(String),
    /// The operation does not match the file's access style (e.g. a block
    /// read on an append-only file).
    WrongAccessStyle(String),
    /// The owning disk has been taken offline or removed.
    DiskUnavailable(usize),
    /// The owning disk ran out of space (`ENOSPC`): an armed
    /// [`FaultArm::DiskFull`](crate::FaultArm::DiskFull) budget was
    /// exhausted before this write.
    DiskFull { disk: usize, path: String },
    /// The write was interrupted partway (simulated crash or power loss):
    /// a prefix of the data may have reached the platter, but the caller
    /// must not assume any of it is durable.
    Interrupted(String),
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound(p) => write!(f, "file not found: {p}"),
            VfsError::Deleted(p) => write!(f, "file has been deleted: {p}"),
            VfsError::Corrupt(p) => write!(f, "file is corrupt: {p}"),
            VfsError::OutOfRange { file, block, blocks } => {
                write!(f, "block {block} out of range for {file} ({blocks} blocks)")
            }
            VfsError::AlreadyExists(p) => write!(f, "file already exists: {p}"),
            VfsError::WrongAccessStyle(p) => write!(f, "wrong access style for {p}"),
            VfsError::DiskUnavailable(d) => write!(f, "disk {d} unavailable"),
            VfsError::DiskFull { disk, path } => {
                write!(f, "disk {disk} full (ENOSPC) writing {path}")
            }
            VfsError::Interrupted(p) => write!(f, "write interrupted: {p}"),
        }
    }
}

impl Error for VfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = VfsError::OutOfRange { file: "a.dbf".into(), block: 9, blocks: 4 };
        assert_eq!(e.to_string(), "block 9 out of range for a.dbf (4 blocks)");
        assert!(VfsError::Deleted("x".into()).to_string().contains("deleted"));
        assert!(VfsError::DiskFull { disk: 1, path: "a.dbf".into() }.to_string().contains("ENOSPC"));
        assert!(VfsError::Interrupted("r1".into()).to_string().contains("interrupted"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<VfsError>();
    }
}
