//! Property-based tests of the simulated filesystem.

use bytes::Bytes;
use proptest::prelude::*;
use recobench_sim::{DiskProfile, SimTime};
use recobench_vfs::{DiskId, FileKind, SimFs};

fn fs() -> SimFs {
    SimFs::new(vec![DiskProfile::server_2000(); 2])
}

proptest! {
    #[test]
    fn block_writes_read_back_last_value(
        writes in proptest::collection::vec((0u64..16, 0u8..255), 1..60)
    ) {
        let mut fs = fs();
        let f = fs.create_block_file("/f", DiskId(0), FileKind::Data, 64, 16).unwrap();
        let mut model = std::collections::HashMap::new();
        for (block, fill) in writes {
            fs.write_block(f, block, Bytes::from(vec![fill; 64]), SimTime::ZERO).unwrap();
            model.insert(block, fill);
        }
        for (block, fill) in model {
            let (_, img) = fs.read_block(f, block, SimTime::ZERO).unwrap();
            prop_assert!(img.iter().all(|&b| b == fill));
        }
    }

    #[test]
    fn append_preserves_order_and_length(
        segments in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..30),
        pads in proptest::collection::vec(0u64..512, 0..30),
    ) {
        let mut fs = fs();
        let f = fs.create_append_file("/log", DiskId(0), FileKind::Redo).unwrap();
        let mut expected_len = 0u64;
        for (i, seg) in segments.iter().enumerate() {
            let pad = pads.get(i).copied().unwrap_or(0);
            fs.append_padded(f, Bytes::from(seg.clone()), pad, SimTime::ZERO).unwrap();
            expected_len += seg.len() as u64 + pad;
        }
        prop_assert_eq!(fs.meta(f).unwrap().size_bytes, expected_len);
        let (_, got) = fs.read_all(f, SimTime::ZERO).unwrap();
        let got_flat: Vec<u8> = got.iter().flat_map(|b| b.iter().copied()).collect();
        let want_flat: Vec<u8> = segments.iter().flatten().copied().collect();
        prop_assert_eq!(got_flat, want_flat);
    }

    #[test]
    fn copy_then_restore_is_identity(
        blocks in proptest::collection::vec((0u64..8, any::<u8>()), 1..20)
    ) {
        let mut fs = fs();
        let f = fs.create_block_file("/orig", DiskId(0), FileKind::Data, 32, 8).unwrap();
        for (b, v) in &blocks {
            fs.write_block(f, *b, Bytes::from(vec![*v; 32]), SimTime::ZERO).unwrap();
        }
        let snapshot = fs.peek_blocks_written(f).unwrap();
        let (_, bak) = fs.copy_file(f, "/bak", DiskId(1), FileKind::Backup, SimTime::ZERO).unwrap();
        // Scribble over the original, then restore.
        for (b, _) in &blocks {
            fs.write_block(f, *b, Bytes::from(vec![0xEE; 32]), SimTime::ZERO).unwrap();
        }
        fs.restore_into(bak, f, SimTime::ZERO).unwrap();
        prop_assert_eq!(fs.peek_blocks_written(f).unwrap(), snapshot);
    }

    #[test]
    fn delete_then_recreate_path_is_fresh(
        name in "[a-z]{1,12}"
    ) {
        let mut fs = fs();
        let path = format!("/{name}");
        let f1 = fs.create_append_file(&path, DiskId(0), FileKind::Archive).unwrap();
        fs.append(f1, Bytes::from_static(b"old"), SimTime::ZERO).unwrap();
        fs.delete_path(&path).unwrap();
        let f2 = fs.create_append_file(&path, DiskId(0), FileKind::Archive).unwrap();
        prop_assert_ne!(f1, f2);
        prop_assert_eq!(fs.meta(f2).unwrap().size_bytes, 0);
        // The old handle stays inspectable but unreadable.
        prop_assert!(fs.meta(f1).unwrap().deleted);
        prop_assert!(fs.read_all(f1, SimTime::ZERO).is_err());
    }

    #[test]
    fn io_time_is_monotone_in_bytes(
        small in 0u64..10_000,
        extra in 1u64..10_000_000,
    ) {
        let mut fs1 = fs();
        let mut fs2 = fs();
        let a = fs1.create_append_file("/a", DiskId(0), FileKind::Redo).unwrap();
        let b = fs2.create_append_file("/b", DiskId(0), FileKind::Redo).unwrap();
        let (t_small, _) = fs1.append_padded(a, Bytes::new(), small, SimTime::ZERO).unwrap();
        let (t_big, _) = fs2.append_padded(b, Bytes::new(), small + extra, SimTime::ZERO).unwrap();
        prop_assert!(t_big >= t_small, "more bytes can never finish sooner");
    }
}
