//! # RecoBench
//!
//! A dependability benchmark for database management systems that jointly
//! measures **performance** (TPC-C tpmC) and **recoverability** (recovery
//! time, lost transactions, data-integrity violations) in the presence of
//! **operator faults** — a from-scratch reproduction of
//! *"Recovery and Performance Balance of a COTS DBMS in the Presence of
//! Operator Faults"* (M. Vieira, H. Madeira — DSN 2002).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel (clock, disks).
//! * [`vfs`] — simulated storage: disks, block files, append files.
//! * [`engine`] — an Oracle-8i-architecture DBMS: buffer cache, redo logs,
//!   checkpoints, archiver, backups, crash/media/point-in-time recovery and
//!   a stand-by instance.
//! * [`tpcc`] — the TPC-C workload: schema, loader, the five transaction
//!   profiles, a terminal driver and the consistency conditions.
//! * [`faults`] — the operator-fault taxonomy (paper Tables 1 & 2), the
//!   fault injector and multi-fault torture schedules.
//! * [`core`] — the benchmark harness: recovery configurations (paper
//!   Table 3), the experiment runner and the dependability measures.
//! * [`oracle`] — the model-based differential oracle and torture runner:
//!   an independent reference model checked against the engine after
//!   randomized multi-fault schedules, with shrinking to minimal
//!   reproducers.
//!
//! # Quickstart
//!
//! ```
//! use recobench::core::{Experiment, RecoveryConfig};
//! use recobench::faults::FaultType;
//!
//! // Run a single 20-simulated-minute TPC-C experiment with a shutdown-abort
//! // operator fault injected 150 s in, on the F10G3T5 recovery configuration.
//! let config = RecoveryConfig::named("F10G3T5").expect("known configuration");
//! let outcome = Experiment::builder(config)
//!     .fault(FaultType::ShutdownAbort, 150)
//!     .duration_secs(240)
//!     .seed(42)
//!     .run()
//!     .expect("experiment runs");
//! assert!(outcome.measures.recovery_time_secs.unwrap() > 0.0);
//! assert_eq!(outcome.measures.integrity_violations, 0);
//! ```

pub use recobench_core as core;
pub use recobench_engine as engine;
pub use recobench_faults as faults;
pub use recobench_oracle as oracle;
pub use recobench_sim as sim;
pub use recobench_tpcc as tpcc;
pub use recobench_vfs as vfs;
