//! `recobench` — command-line front end for the dependability benchmark.
//!
//! ```text
//! recobench configs                      list the Table 3 configurations
//! recobench faults                       list the operator-fault taxonomy
//! recobench run [OPTIONS]                run one experiment
//!
//! run options:
//!   --config <NAME>      recovery configuration (default F40G3T10)
//!   --fault <TYPE>       shutdown-abort | delete-datafile | delete-tablespace |
//!                        datafile-offline | tablespace-offline | drop-table
//!   --at <SECS>          fault trigger offset (default 300)
//!   --duration <SECS>    experiment length (default 1200)
//!   --seed <N>           RNG seed (default 42)
//!   --no-archive         disable ARCHIVELOG mode
//!   --standby            add a stand-by database and fail over on the fault
//! ```

use recobench::core::report::Table;
use recobench::core::{Experiment, RecoveryConfig};
use recobench::faults::{FaultClass, FaultType, OperatorFaultType};

fn parse_fault(s: &str) -> Option<FaultType> {
    Some(match s {
        "shutdown-abort" => FaultType::ShutdownAbort,
        "delete-datafile" => FaultType::DeleteDatafile,
        "delete-tablespace" => FaultType::DeleteTablespace,
        "datafile-offline" => FaultType::SetDatafileOffline,
        "tablespace-offline" => FaultType::SetTablespaceOffline,
        "drop-table" => FaultType::DeleteUsersObject,
        _ => return None,
    })
}

fn cmd_configs() {
    let mut t = Table::new(vec!["Name", "File size", "Groups", "Checkpoint timeout"])
        .title("Recovery configurations (paper Table 3)");
    for c in RecoveryConfig::table3() {
        t.row(vec![
            c.name.clone(),
            format!("{} MB", c.redo_file_mb),
            c.redo_groups.to_string(),
            format!("{} s", c.checkpoint_timeout_secs),
        ]);
    }
    println!("{}", t.render());
}

fn cmd_faults() {
    let mut t = Table::new(vec!["Class", "Fault type", "Portability"])
        .title("Operator-fault taxonomy (paper Tables 1 & 2)");
    for class in FaultClass::all() {
        for f in OperatorFaultType::all().into_iter().filter(|f| f.class() == class) {
            t.row(vec![class.to_string(), f.description().into(), f.portability().to_string()]);
        }
    }
    println!("{}", t.render());
    println!("Injectable types: shutdown-abort, delete-datafile, delete-tablespace,");
    println!("                  datafile-offline, tablespace-offline, drop-table");
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut config = "F40G3T10".to_string();
    let mut fault: Option<FaultType> = None;
    let mut at = 300u64;
    let mut duration = 1_200u64;
    let mut seed = 42u64;
    let mut archive = true;
    let mut standby = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--config" => {
                config = args.get(i + 1).ok_or("--config needs a value")?.clone();
                i += 1;
            }
            "--fault" => {
                let v = args.get(i + 1).ok_or("--fault needs a value")?;
                fault = Some(parse_fault(v).ok_or_else(|| format!("unknown fault type {v}"))?);
                i += 1;
            }
            "--at" => {
                at = args.get(i + 1).and_then(|v| v.parse().ok()).ok_or("--at needs seconds")?;
                i += 1;
            }
            "--duration" => {
                duration = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--duration needs seconds")?;
                i += 1;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|v| v.parse().ok()).ok_or("--seed needs a number")?;
                i += 1;
            }
            "--no-archive" => archive = false,
            "--standby" => standby = true,
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }

    let cfg = RecoveryConfig::named(&config).ok_or_else(|| format!("unknown configuration {config}"))?;
    eprintln!("running {config} for {duration} simulated seconds...");
    let mut builder =
        Experiment::builder(cfg).duration_secs(duration).seed(seed).archive_logs(archive).standby(standby);
    if let Some(f) = fault {
        builder = builder.fault(f, at);
    }
    let out = builder.run().map_err(|e| e.to_string())?;

    let m = &out.measures;
    let mut t = Table::new(vec!["Measure", "Value"]).title(format!("Experiment: {}", out.config_name));
    t.row(vec!["tpmC".into(), format!("{:.0}", m.tpmc)]);
    t.row(vec![
        "fault".into(),
        out.fault.map_or("none".into(), |f| format!("{f} at t+{}s", out.trigger_secs.unwrap_or(0))),
    ]);
    t.row(vec!["recovery time (s)".into(), m.recovery_cell(duration.saturating_sub(at))]);
    t.row(vec!["lost transactions".into(), m.lost_transactions.to_string()]);
    t.row(vec!["integrity violations".into(), m.integrity_violations.to_string()]);
    t.row(vec!["log switches".into(), m.log_switches.to_string()]);
    t.row(vec!["redo generated (MB)".into(), format!("{:.1}", m.redo_mb)]);
    t.row(vec!["commits".into(), m.total_commits.to_string()]);
    t.row(vec!["unrecoverable".into(), out.unrecoverable.to_string()]);
    println!("{}", t.render());
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("configs") => {
            cmd_configs();
            Ok(())
        }
        Some("faults") => {
            cmd_faults();
            Ok(())
        }
        Some("run") => cmd_run(&args[1..]),
        _ => {
            eprintln!("usage: recobench <configs|faults|run> [options]");
            eprintln!("see the crate README for details");
            Err(String::new())
        }
    };
    if let Err(e) = result {
        if !e.is_empty() {
            eprintln!("error: {e}");
        }
        std::process::exit(2);
    }
}
