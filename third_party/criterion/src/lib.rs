//! Minimal, API-compatible subset of `criterion`.
//!
//! The build environment has no network access, so the benchmark harness
//! surface RecoBench uses is vendored here. Unlike the serde stub this one
//! does real work: each benchmark is warmed up and then timed with
//! `std::time::Instant` over enough iterations to get a stable per-iter
//! figure, printed as `group/name  time: <t>` (plus throughput when
//! configured). There is no statistical analysis, HTML report, or
//! comparison to saved baselines.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; every
/// batch holds a single input).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-iteration throughput used to derive rate output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle; created by `criterion_group!`.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(150),
            measure: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Times a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let (per_iter, iters) = run_bench(self.warm_up, self.measure, &mut f);
        report(name, per_iter, iters, None);
        self
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub sizes runs by wall-clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure = d;
        self
    }

    /// Times one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let (per_iter, iters) = run_bench(self.criterion.warm_up, self.criterion.measure, &mut f);
        report(&format!("{}/{}", self.name, name), per_iter, iters, self.throughput);
        self
    }

    /// Ends the group (prints nothing; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(warm_up: Duration, measure: Duration, f: &mut F) -> (f64, u64) {
    // Warm-up pass: also discovers roughly how long one invocation takes.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warm_start = Instant::now();
    let mut calls = 0u64;
    while warm_start.elapsed() < warm_up || calls == 0 {
        f(&mut b);
        calls += 1;
        if b.elapsed > warm_up {
            break;
        }
    }

    // Measurement: repeat until the measurement budget is spent.
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    while total < measure {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
        if b.elapsed.is_zero() {
            // Timer resolution floor: count the iterations anyway.
            total += Duration::from_nanos(1);
        }
    }
    (total.as_secs_f64() / iters.max(1) as f64, iters)
}

fn report(name: &str, per_iter_secs: f64, iters: u64, throughput: Option<Throughput>) {
    let time = fmt_time(per_iter_secs);
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {}/s", fmt_bytes(n as f64 / per_iter_secs))
        }
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.2} Melem/s", n as f64 / per_iter_secs / 1e6)
        }
        None => String::new(),
    };
    println!("{name:<40} time: {time:>12}  iters: {iters}{rate}");
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn fmt_bytes(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} GiB", rate / (1u64 << 30) as f64)
    } else if rate >= 1e6 {
        format!("{:.2} MiB", rate / (1u64 << 20) as f64)
    } else {
        format!("{:.2} KiB", rate / 1024.0)
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over an adaptively chosen number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Size the batch so one call to `iter` costs ~1ms minimum.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let batch = (Duration::from_millis(1).as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = batch + 1;
        self.elapsed += probe;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut elapsed = Duration::ZERO;
        let mut iters = 0u64;
        // A handful of timed runs per call; outer loop adds more as needed.
        while iters < 4 && elapsed < Duration::from_millis(2) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
        }
        self.elapsed = elapsed;
        self.iters = iters;
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(5),
            measure: Duration::from_millis(10),
        };
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + 1));
        g.finish();
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        };
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
