//! Minimal, API-compatible subset of `proptest`.
//!
//! The build environment has no network access, so the slice of proptest
//! RecoBench's property tests use is vendored here: strategies (`Just`,
//! ranges, tuples, simple `[a-z]{m,n}` regex classes, `collection::vec`,
//! `option::of`, `prop_oneof!`), `any::<T>()`, and the `proptest!` test
//! macro. Cases are generated from a deterministic per-test RNG; there is
//! no shrinking — a failing case panics with the generated inputs printed
//! by the assertion itself.

pub mod test_runner {
    /// Deterministic 64-bit RNG (SplitMix64) used to generate cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from the test name, so every test draws an
        /// independent but reproducible stream.
        pub fn deterministic(label: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }

    /// Runner configuration; only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
        /// Accepted for API compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Default::default() }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type (named `Value` to match proptest).
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds from `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positively weighted arm");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum covered above")
        }
    }

    /// Integer types uniformly samplable from ranges.
    pub trait SampleUniform: Copy {
        /// Uniform draw from `[lo, hi)` in u64 space.
        fn sample(rng: &mut TestRng, lo: Self, hi_exclusive: Self) -> Self;
    }

    macro_rules! impl_sample_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    (lo as u64).wrapping_add(rng.below(span)) as $t
                }
            }
        )*};
    }
    impl_sample_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_sample_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "empty range");
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                    (lo as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    impl_sample_int!(i8, i16, i32, i64, isize);

    impl<T: SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform + num_helpers::StepUp> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            match hi.step_up() {
                Some(hi1) => T::sample(rng, lo, hi1),
                // `hi` is the type maximum; widen by sampling then clamping.
                None => {
                    if rng.below(2) == 0 {
                        hi
                    } else {
                        T::sample(rng, lo, hi)
                    }
                }
            }
        }
    }

    mod num_helpers {
        /// `checked_add(1)` abstraction for inclusive ranges.
        pub trait StepUp: Sized + Copy {
            fn step_up(self) -> Option<Self>;
        }
        macro_rules! impl_step {
            ($($t:ty),*) => {$(
                impl StepUp for $t {
                    fn step_up(self) -> Option<Self> {
                        self.checked_add(1)
                    }
                }
            )*};
        }
        impl_step!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
    }

    /// `&'static str` regex strategies: only the `[class]{m,n}` shape the
    /// tests use is supported.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_class_repeat(self);
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
        }
    }

    fn parse_class_repeat(pat: &str) -> (Vec<char>, usize, usize) {
        let bytes: Vec<char> = pat.chars().collect();
        assert!(
            bytes.first() == Some(&'['),
            "unsupported regex strategy {pat:?}: only [class]{{m,n}} is implemented"
        );
        let close = bytes.iter().position(|&c| c == ']').expect("unterminated char class");
        let class = &bytes[1..close];
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                assert!(a <= b, "inverted class range in {pat:?}");
                chars.extend((a..=b).filter_map(char::from_u32));
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        assert!(!chars.is_empty(), "empty char class in {pat:?}");
        let rest: String = bytes[close + 1..].iter().collect();
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported repetition in {pat:?}"));
        let (lo, hi) = match inner.split_once(',') {
            Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
            None => {
                let n = inner.trim().parse().unwrap();
                (n, n)
            }
        };
        assert!(lo <= hi, "inverted repetition in {pat:?}");
        (chars, lo, hi)
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Uniform in [0, 1): full-domain floats are rarely useful.
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// The `any::<T>()` strategy.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count range for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy over `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (10% `None`, like proptest's
    /// default weighting).
    pub struct OptionStrategy<S>(S);

    /// `Option` strategy over `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(10) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Runs each contained `#[test] fn name(arg in strategy, ...)` over
/// `cases` generated inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg); $($rest)*);
    };
    (@expand ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn class_regex_respects_bounds() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..100 {
            let s = Strategy::generate(&"[ -~]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 1usize..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn oneof_vec_and_option_compose(
            v in crate::collection::vec(prop_oneof![2 => Just(1u8), 1 => Just(2u8)], 1..10),
            o in crate::option::of(0u32..5),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&b| b == 1 || b == 2));
            if let Some(x) = o {
                prop_assert!(x < 5);
            }
        }
    }
}
