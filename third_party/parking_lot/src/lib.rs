//! Stand-in for `parking_lot` backed by `std::sync`.
//!
//! Only the `Mutex` surface RecoBench uses is provided: `lock()` returns
//! the guard directly (poison is swallowed, matching parking_lot's
//! no-poisoning semantics).

use std::sync::{Mutex as StdMutex, MutexGuard, TryLockError};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }
}
