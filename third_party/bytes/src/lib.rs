//! Minimal, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no network access, so the handful of `bytes`
//! APIs RecoBench uses are vendored here. `Bytes` keeps the property the
//! engine relies on for performance: cloning and slicing are O(1)
//! reference-count operations over one shared allocation.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable, immutable view over a shared byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]), off: 0, len: 0 }
    }

    /// A buffer over static data (copied once; the real crate borrows).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes left (Buf-style alias of `len`).
    pub fn remaining(&self) -> usize {
        self.len
    }

    /// Splits off and returns the first `n` bytes; `self` keeps the rest.
    /// O(1): both views share the allocation.
    ///
    /// # Panics
    ///
    /// Panics if `n > len`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len, "split_to out of range");
        let head = Bytes { data: Arc::clone(&self.data), off: self.off, len: n };
        self.off += n;
        self.len -= n;
        head
    }

    /// Drops the first `n` bytes of the view.
    ///
    /// # Panics
    ///
    /// Panics if `n > len`.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len, "advance out of range");
        self.off += n;
        self.len -= n;
    }

    /// O(1) sub-view of `range` (only `start..end` forms are supported).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len, "slice out of range");
        Bytes { data: Arc::clone(&self.data), off: self.off + range.start, len: range.end - range.start }
    }

    fn take(&mut self, n: usize, what: &str) -> &[u8] {
        assert!(self.len >= n, "buffer exhausted reading {what}");
        let s = &self.data[self.off..self.off + n];
        self.off += n;
        self.len -= n;
        s
    }

    /// Reads a `u8`, advancing.
    pub fn get_u8(&mut self) -> u8 {
        self.take(1, "u8")[0]
    }

    /// Reads a big-endian `u16`, advancing.
    pub fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2, "u16").try_into().unwrap())
    }

    /// Reads a big-endian `u32`, advancing.
    pub fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4, "u32").try_into().unwrap())
    }

    /// Reads a big-endian `u64`, advancing.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8, "u64").try_into().unwrap())
    }

    /// Reads a big-endian `i64`, advancing.
    pub fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take(8, "i64").try_into().unwrap())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { data: Arc::from(v), off: 0, len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.deref().iter()
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { vec: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.vec.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a slice.
    pub fn put_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

/// Read-cursor trait marker (methods live inherently on [`Bytes`]).
pub trait Buf {}
impl Buf for Bytes {}

/// Write-cursor trait marker (methods live inherently on [`BytesMut`]).
pub trait BufMut {}
impl BufMut for BytesMut {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_advance_share_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(b.as_ref(), &[3, 4, 5]);
        b.advance(1);
        assert_eq!(b.as_ref(), &[4, 5]);
    }

    #[test]
    fn scalar_reads_advance() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u16(300);
        m.put_u32(70_000);
        m.put_u64(u64::MAX);
        m.put_i64(-42);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 300);
        assert_eq!(b.get_u32(), 70_000);
        assert_eq!(b.get_u64(), u64::MAX);
        assert_eq!(b.get_i64(), -42);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn equality_and_debug() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(vec![b'a', b'b', b'c']);
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "b\"abc\"");
    }
}
