//! No-op stand-in for `serde`.
//!
//! RecoBench derives `Serialize`/`Deserialize` on its public result types
//! as a forward-compatibility affordance, but nothing in the workspace
//! actually serializes through serde (JSON reports are emitted by hand).
//! The build environment has no network access, so this vendored crate
//! supplies the two trait names and derive macros as empty shells. If a
//! real serializer is ever needed, replace this with the actual crate.

/// Marker trait; the derive emits no implementation and nothing bounds on
/// this trait.
pub trait Serialize {}

/// Marker trait; the derive emits no implementation and nothing bounds on
/// this trait.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
