//! No-op `Serialize`/`Deserialize` derives: the annotated types gain no
//! impls, which is fine because nothing in the workspace bounds on the
//! serde traits (see the vendored `serde` crate's docs).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
